//! `cargo run -p amud-lint` — the `amud-analyze` workspace engine.
//!
//! Scans every library source file (`crates/*/src/**`, `src/**`) with the
//! passes in [`amud_lint::passes`], resolves the findings against the
//! per-rule baseline in `lint-allow.txt`, and exits with a distinct code
//! per failure class:
//!
//! ```text
//! 0  clean (baselined debt only)
//! 1  fresh violation — a (rule, file) pair with no baseline entry
//! 2  usage error — unknown flag / malformed baseline
//! 3  ratchet regression — a budgeted count went up
//! 4  internal error — unreadable file, unwritable report
//! ```
//!
//! ```text
//! cargo run -p amud-lint                        # check the workspace
//! cargo run -p amud-lint -- --bless             # rewrite lint-allow.txt from current counts
//! cargo run -p amud-lint -- --report out.json   # also write analyze-report.json
//! cargo run -p amud-lint -- --timings           # per-pass wall-time summary column
//! cargo run -p amud-lint -- --baseline f FILE…  # lint specific files against a baseline
//! cargo run -p amud-lint -- FILE…               # lint specific files (zero budgets)
//! ```

use amud_lint::{analyze_files, analyze_files_timed, report, resolve, Baseline};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const EXIT_CLEAN: u8 = 0;
const EXIT_VIOLATION: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_REGRESSION: u8 = 3;
const EXIT_INTERNAL: u8 = 4;

/// Workspace root: two levels above this crate's manifest. The layout is
/// fixed by the repo (crates/lint/Cargo.toml), so the ancestor always
/// exists; fall back to `.` rather than crash inside the linter.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap_or(Path::new(".")).to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Fixture corpora inside a crate are lint subjects' test data,
            // not workspace code.
            if name != "fixtures" {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Library sources: every workspace crate's `src/` tree plus the root
/// package's `src/` (bins included — they ship). Tests, examples and
/// benches are not hot paths and stay unscanned.
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        // crates/compat holds its stub crates one level deeper.
        if let Ok(compat) = std::fs::read_dir(root.join("crates").join("compat")) {
            crates.extend(compat.flatten().map(|e| e.path()));
        }
        crates.sort();
        for krate in crates {
            collect_rs_files(&krate.join("src"), &mut files);
        }
    }
    collect_rs_files(&root.join("src"), &mut files);
    files.sort();
    files
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

struct Options {
    bless: bool,
    timings: bool,
    report_path: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    explicit: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        bless: false,
        timings: false,
        report_path: None,
        baseline_path: None,
        explicit: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bless" => opts.bless = true,
            "--timings" => opts.timings = true,
            "--report" => match it.next() {
                Some(p) => opts.report_path = Some(PathBuf::from(p)),
                None => return Err("--report needs a path".into()),
            },
            "--baseline" => match it.next() {
                Some(p) => opts.baseline_path = Some(PathBuf::from(p)),
                None => return Err("--baseline needs a path".into()),
            },
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown flag '{flag}' (recognised: --bless, --timings, --report <path>, --baseline <path>)"
                ));
            }
            file => opts.explicit.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let root = workspace_root();
    let default_baseline = root.join("lint-allow.txt");

    // Explicit files are linted against zero budgets unless --baseline is
    // given — the mode the lint fixtures and pre-commit hooks use.
    let workspace_mode = opts.explicit.is_empty();
    let baseline_path = match &opts.baseline_path {
        Some(p) => Some(p.clone()),
        None if workspace_mode => Some(default_baseline.clone()),
        None => None,
    };
    let baseline = match &baseline_path {
        Some(p) if opts.baseline_path.is_some() || p.exists() => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", p.display());
                    return ExitCode::from(EXIT_INTERNAL);
                }
            };
            match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {}: {e}", p.display());
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        }
        _ => Baseline::default(),
    };

    let files = if workspace_mode { workspace_sources(&root) } else { opts.explicit.clone() };

    let mut sources: Vec<(String, String)> = Vec::new();
    let mut scanned: BTreeSet<String> = BTreeSet::new();
    for path in &files {
        let label = rel(&root, path);
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {label}: {e}");
                return ExitCode::from(EXIT_INTERNAL);
            }
        };
        scanned.insert(label.clone());
        sources.push((label, source));
    }
    // Per-file passes and the interprocedural workspace passes run over
    // the same file set; explicit-file mode is simply a small workspace.
    // Timings stay out of the JSON report, so both paths feed the same
    // deterministic resolution.
    let (violations, timings) = if opts.timings {
        let (vs, ts) = analyze_files_timed(&sources);
        (vs, Some(ts))
    } else {
        (analyze_files(&sources), None)
    };

    let res = resolve(violations, &scanned, &baseline);

    if opts.bless {
        let text = Baseline::render(&res.counts, &baseline);
        let target = baseline_path.unwrap_or(default_baseline);
        if let Err(e) = std::fs::write(&target, text) {
            eprintln!("error: cannot write {}: {e}", target.display());
            return ExitCode::from(EXIT_INTERNAL);
        }
        println!(
            "blessed {} ({} files, {} budgeted finding(s))",
            target.display(),
            scanned.len(),
            res.counts.values().sum::<usize>()
        );
        return ExitCode::from(EXIT_CLEAN);
    }

    if let Some(report_path) = &opts.report_path {
        let json = report::render_json(scanned.len(), &res);
        if let Err(e) = std::fs::write(report_path, json) {
            eprintln!("error: cannot write {}: {e}", report_path.display());
            return ExitCode::from(EXIT_INTERNAL);
        }
    }

    for v in &res.fresh {
        println!("{v}");
    }
    for v in &res.regressions {
        println!("{v}");
    }
    for n in &res.notes {
        println!("note: {n}");
    }
    match &timings {
        Some(ts) => print!("{}", report::render_summary_timed(scanned.len(), &res, ts)),
        None => print!("{}", report::render_summary(scanned.len(), &res)),
    }

    if !res.fresh.is_empty() {
        ExitCode::from(EXIT_VIOLATION)
    } else if !res.regressions.is_empty() {
        ExitCode::from(EXIT_REGRESSION)
    } else {
        ExitCode::from(EXIT_CLEAN)
    }
}
