//! `cargo run -p amud-lint` — workspace lint harness.
//!
//! Scans every library source file (`crates/*/src/**`, `src/**`) with the
//! rules in [`amud_lint`], resolves the unwrap/expect ratchet against
//! `lint-allow.txt` at the workspace root, and exits non-zero on any
//! violation.
//!
//! ```text
//! cargo run -p amud-lint              # check
//! cargo run -p amud-lint -- --bless   # rewrite lint-allow.txt with current counts
//! cargo run -p amud-lint -- FILE...   # lint specific files (zero budgets)
//! ```

use amud_lint::{lint_source, resolve_ratchet, Allowlist, Violation};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Fixture corpora inside a crate are lint subjects' test data,
            // not workspace code.
            if name != "fixtures" {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Library sources: every workspace crate's `src/` tree plus the root
/// package's `src/` (bins included — they ship). Tests, examples and
/// benches are not hot paths and stay unscanned.
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        // crates/compat holds its stub crates one level deeper.
        if let Ok(compat) = std::fs::read_dir(root.join("crates").join("compat")) {
            crates.extend(compat.flatten().map(|e| e.path()));
        }
        crates.sort();
        for krate in crates {
            collect_rs_files(&krate.join("src"), &mut files);
        }
    }
    collect_rs_files(&root.join("src"), &mut files);
    files.sort();
    files
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    if let Some(flag) = args.iter().find(|a| a.starts_with("--") && *a != "--bless") {
        eprintln!("error: unknown flag '{flag}' (only --bless is recognised)");
        std::process::exit(2);
    }
    let explicit: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();

    let root = workspace_root();
    let allow_path = root.join("lint-allow.txt");

    // Explicit files are linted against zero budgets — the mode the lint
    // fixtures and pre-commit hooks use.
    let (files, allow) = if explicit.is_empty() {
        let allow = match std::fs::read_to_string(&allow_path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("error: lint-allow.txt: {e}");
                    std::process::exit(2);
                }
            },
            Err(_) => Allowlist::default(),
        };
        (workspace_sources(&root), allow)
    } else {
        (explicit.iter().map(PathBuf::from).collect(), Allowlist::default())
    };

    let mut violations: Vec<Violation> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut scanned = 0usize;

    for path in &files {
        let label = rel(&root, path);
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {label}: {e}");
                std::process::exit(2);
            }
        };
        scanned += 1;
        let report = lint_source(&label, &source);
        counts.insert(label.clone(), report.unwrap_count);
        violations.extend(report.violations.iter().cloned());
        let (overrun, note) = resolve_ratchet(&label, &report, &allow);
        violations.extend(overrun);
        notes.extend(note);
    }

    // Stale allowlist entries point at deleted/renamed files; surface them
    // so the budget cannot silently migrate.
    for (path, budget) in allow.paths() {
        if !counts.contains_key(path) {
            notes.push(format!(
                "{path}: allowlisted ({budget}) but no longer scanned — remove the entry"
            ));
        }
    }

    if bless {
        let text = Allowlist::render(&counts);
        if let Err(e) = std::fs::write(&allow_path, text) {
            eprintln!("error: cannot write {}: {e}", allow_path.display());
            std::process::exit(2);
        }
        println!(
            "blessed {} ({} files, {} budgeted)",
            allow_path.display(),
            scanned,
            counts.values().filter(|&&c| c > 0).count()
        );
        return;
    }

    for v in &violations {
        println!("{v}");
    }
    for n in &notes {
        println!("note: {n}");
    }
    let budget_total: usize = counts.values().sum();
    println!(
        "amud-lint: {} file(s), {} violation(s), {} ratchet note(s), {} unwrap/expect call(s) budgeted",
        scanned,
        violations.len(),
        notes.len(),
        budget_total
    );
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
