//! Workspace symbol table: every live `fn` item across every crate,
//! keyed by bare name.
//!
//! The table is the first interprocedural layer on top of [`FileIndex`]:
//! it fuses the per-file function indexes into one id space so the
//! [`crate::callgraph`] can resolve a call site in one crate to a
//! definition in another. Resolution is *lexical* — by bare name, with no
//! type information — so a method call resolves to every workspace
//! function of that name. Passes built on the table are therefore
//! over-approximate (they may follow an edge the type system would
//! reject) but never miss a same-name edge, which is the right polarity
//! for safety checks like panic reachability.
//!
//! The vendored API stubs under `crates/compat/` are deliberately **not**
//! indexed: they stand in for external dependencies, and treating their
//! bodies as workspace code would let a stub's `unwrap` poison every
//! caller of a common name like `sample`.

use crate::index::FileIndex;
use std::collections::BTreeMap;
use std::ops::Range;

/// One workspace function definition.
pub struct Symbol {
    /// Dense id — the index into [`SymbolTable::symbols`].
    pub id: usize,
    /// Bare function name (no path qualification).
    pub name: String,
    /// Index into the `files` slice the table was built from.
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub label: String,
    /// Crate name derived from the path (`crates/nn/src/…` → `nn`).
    pub krate: String,
    /// Token index of the `fn` keyword in the defining file.
    pub at: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter names in declaration order (`self` excluded).
    pub params: Vec<String>,
    /// Token range of the body in the defining file, braces included.
    pub body: Range<usize>,
}

/// All live workspace functions with a by-name resolution index.
pub struct SymbolTable {
    pub symbols: Vec<Symbol>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Crate name for a workspace-relative path: `crates/nn/src/x.rs` → `nn`,
/// anything under the root package's `src/` → `amud-repro`.
pub fn crate_of(label: &str) -> &str {
    match label.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(rest),
        None => "amud-repro",
    }
}

impl SymbolTable {
    /// Builds the table from `(label, index)` pairs — one per scanned
    /// file. Compat stubs are skipped (they model *external* crates).
    pub fn build(files: &[(String, FileIndex)]) -> SymbolTable {
        let mut symbols = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, (label, ix)) in files.iter().enumerate() {
            if label.starts_with("crates/compat/") {
                continue;
            }
            for item in ix.fn_items() {
                let id = symbols.len();
                by_name.entry(item.name.clone()).or_default().push(id);
                symbols.push(Symbol {
                    id,
                    name: item.name,
                    file: fi,
                    label: label.clone(),
                    krate: crate_of(label).to_string(),
                    at: item.at,
                    line: ix.toks[item.at].line,
                    params: item.params,
                    body: item.body,
                });
            }
        }
        SymbolTable { symbols, by_name }
    }

    /// Ids of every workspace function named `name` (possibly several —
    /// same-name methods on different types all match).
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn get(&self, id: usize) -> &Symbol {
        &self.symbols[id]
    }

    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn table(files: &[(&str, &str)]) -> (Vec<(String, FileIndex)>, SymbolTable) {
        let files: Vec<(String, FileIndex)> = files
            .iter()
            .map(|(label, src)| (label.to_string(), FileIndex::new(tokenize(src))))
            .collect();
        let table = SymbolTable::build(&files);
        (files, table)
    }

    #[test]
    fn fns_are_indexed_across_files_by_bare_name() {
        let (_files, t) = table(&[
            ("crates/nn/src/a.rs", "pub fn shared() {}\nfn only_a() {}\n"),
            ("crates/graph/src/b.rs", "impl T {\n    pub fn shared(&self) {}\n}\n"),
        ]);
        assert_eq!(t.resolve("shared").len(), 2, "same name in two crates → two candidates");
        assert_eq!(t.resolve("only_a").len(), 1);
        assert_eq!(t.get(t.resolve("only_a")[0]).krate, "nn");
        assert!(t.resolve("missing").is_empty());
    }

    #[test]
    fn compat_stubs_and_test_code_are_invisible() {
        let (_files, t) = table(&[
            ("crates/compat/rand/src/lib.rs", "pub fn sample() {}\n"),
            ("crates/nn/src/a.rs", "#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n"),
        ]);
        assert!(t.resolve("sample").is_empty(), "compat stubs model external crates");
        assert!(t.resolve("helper").is_empty(), "test code is exempt everywhere");
    }

    #[test]
    fn crate_of_handles_root_and_crates() {
        assert_eq!(crate_of("crates/par/src/lib.rs"), "par");
        assert_eq!(crate_of("src/bin/amud.rs"), "amud-repro");
    }
}
