//! Value-level abstract interpretation over the token index: an interval +
//! symbolic-length domain for let-bindings, loop bounds, and
//! `len()`/`n_rows`-style facts, plus the three passes built on it.
//!
//! * `index-bounds` — every indexed access (`a[i]`, `get_unchecked`, range
//!   slicing) in the governed kernel files must be dominated by a proving
//!   comparison/loop bound, or carry an audited `// BOUNDS(var): reason`
//!   escape. `split_even`/`split_by_weight`/`par_row_blocks_mut` range math
//!   is modeled as the static twin of the runtime disjointness sanitizer.
//! * `shape-consistency` — matrix dimensions traced through ctors,
//!   `matmul*`/`spmm`/`matmul_deq` call sites, and `QMatrix` decode paths;
//!   statically-known inner-dim mismatches become lint errors instead of
//!   runtime `VerifierRejected` surprises.
//! * `exit-code-registry` — every `process::exit(n)` and exit-code constant
//!   workspace-wide is checked against the README exit-code table (train
//!   codes 0–8, serve codes 9–12), including constants flowing through
//!   exit-sink helpers like `die(msg, code)`.
//!
//! The domain is deliberately lexical: facts are normalized token spans
//! (`"a.len()"`, `"n_rows+1"`), upper bounds come from `for`/`while`/`if`
//! guards and `assert!`s, and equalities from `let` bindings with
//! kill-on-rebind semantics. What it proves, it proves on **all** paths;
//! what it cannot prove needs either a refactor the prover can see or a
//! `// BOUNDS(var): reason` escape (reason ≥ 10 chars) naming the
//! data-structure invariant.

use crate::callgraph::CallGraph;
use crate::index::{match_delim, next_code, prev_code, FileIndex, FnItem};
use crate::passes::{RuleKind, Severity, Violation};
use crate::symbols::{crate_of, SymbolTable};
use crate::tokenizer::TokKind;
use crate::workspace::binding_inits;
use std::collections::BTreeMap;
use std::ops::Range;

// ---------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------

/// A (possibly half-open) integer interval; `None` is ±∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub lo: Option<i64>,
    pub hi: Option<i64>,
}

impl Interval {
    /// The single-point interval `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: Some(v), hi: Some(v) }
    }

    /// The unbounded interval `(-∞, +∞)`.
    pub fn top() -> Interval {
        Interval { lo: None, hi: None }
    }

    /// Least upper bound of two intervals.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Standard widening: any bound still moving jumps to ±∞, so loop
    /// iteration terminates in one step per bound.
    pub fn widen(self, next: Interval) -> Interval {
        Interval {
            lo: match (self.lo, next.lo) {
                (Some(a), Some(b)) if b >= a => Some(a),
                _ => None,
            },
            hi: match (self.hi, next.hi) {
                (Some(a), Some(b)) if b <= a => Some(a),
                _ => None,
            },
        }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo.is_none_or(|l| l <= v) && self.hi.is_none_or(|h| v <= h)
    }
}

// ---------------------------------------------------------------------
// Expression machinery over live-token-index slices
// ---------------------------------------------------------------------

fn is_open(ix: &FileIndex, t: usize) -> bool {
    let tok = &ix.toks[t];
    tok.kind == TokKind::Punct && matches!(tok.text.as_str(), "(" | "[" | "{")
}

fn is_close(ix: &FileIndex, t: usize) -> bool {
    let tok = &ix.toks[t];
    tok.kind == TokKind::Punct && matches!(tok.text.as_str(), ")" | "]" | "}")
}

/// Live code token indices of `range`, with leading `&`/`&mut` and any
/// fully-wrapping outer parens stripped.
fn expr_toks(ix: &FileIndex, range: &Range<usize>) -> Vec<usize> {
    let mut ts: Vec<usize> =
        range.clone().filter(|&i| i < ix.toks.len() && ix.is_live(i)).collect();
    loop {
        match ts.first() {
            Some(&f) if ix.toks[f].is_punct("&") => {
                ts.remove(0);
            }
            Some(&f) if ix.toks[f].is_ident("mut") && ts.len() > 1 => {
                ts.remove(0);
            }
            _ => break,
        }
    }
    strip_outer_parens(ix, &mut ts);
    ts
}

/// Removes `( … )` pairs that wrap the whole slice.
fn strip_outer_parens(ix: &FileIndex, ts: &mut Vec<usize>) {
    loop {
        if ts.len() < 2 || !ix.toks[ts[0]].is_punct("(") || !ix.toks[ts[ts.len() - 1]].is_punct(")")
        {
            return;
        }
        let mut depth = 0i32;
        let mut close_pos = None;
        for (p, &t) in ts.iter().enumerate() {
            if is_open(ix, t) {
                depth += 1;
            } else if is_close(ix, t) {
                depth -= 1;
                if depth == 0 {
                    close_pos = Some(p);
                    break;
                }
            }
        }
        if close_pos == Some(ts.len() - 1) {
            ts.pop();
            ts.remove(0);
        } else {
            return;
        }
    }
}

/// Drops a trailing `as <type>` cast (repeatedly) and outer parens.
fn normalize(ix: &FileIndex, ts: &[usize]) -> Vec<usize> {
    let mut v = ts.to_vec();
    strip_outer_parens(ix, &mut v);
    loop {
        let mut depth = 0i32;
        let mut at = None;
        for (p, &t) in v.iter().enumerate() {
            if is_open(ix, t) {
                depth += 1;
            } else if is_close(ix, t) {
                depth -= 1;
            } else if depth == 0 && ix.toks[t].is_ident("as") {
                at = Some(p);
            }
        }
        match at {
            Some(p) if p > 0 => v.truncate(p),
            _ => break,
        }
        strip_outer_parens(ix, &mut v);
    }
    v
}

/// Canonical text of a token slice: token texts joined, with a space only
/// between two word-like tokens (`"a.len()"`, `"n_rows+1"`, `"c as usize"`
/// never reaches here — casts are stripped by [`normalize`]).
pub(crate) fn norm(ix: &FileIndex, ts: &[usize]) -> String {
    let mut s = String::new();
    let mut prev_word = false;
    for &i in ts {
        let t = &ix.toks[i];
        let word = matches!(t.kind, TokKind::Ident | TokKind::NumLit);
        if word && prev_word {
            s.push(' ');
        }
        s.push_str(&t.text);
        prev_word = word;
    }
    s
}

/// Splits at the **last** depth-0 occurrence of any operator in `ops`
/// (left-associative parse), excluding unary uses.
fn split_last_top<'o>(
    ix: &FileIndex,
    ts: &[usize],
    ops: &[&'o str],
) -> Option<(Vec<usize>, &'o str, Vec<usize>)> {
    let mut depth = 0i32;
    let mut found: Option<(usize, &'o str)> = None;
    for (p, &t) in ts.iter().enumerate() {
        if is_open(ix, t) {
            depth += 1;
        } else if is_close(ix, t) {
            depth -= 1;
        } else if ix.toks[t].kind == TokKind::Punct && depth == 0 && p > 0 && p + 1 < ts.len() {
            if let Some(&op) = ops.iter().find(|&&o| o == ix.toks[t].text) {
                let prev = &ix.toks[ts[p - 1]];
                let prev_is_operand = matches!(prev.kind, TokKind::Ident | TokKind::NumLit)
                    || prev.is_punct(")")
                    || prev.is_punct("]");
                if prev_is_operand {
                    found = Some((p, op));
                }
            }
        }
    }
    found.map(|(p, op)| (ts[..p].to_vec(), op, ts[p + 1..].to_vec()))
}

/// Top-level comma split of a token-index slice.
fn split_args(ix: &FileIndex, ts: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for &t in ts {
        if is_open(ix, t) {
            depth += 1;
        } else if is_close(ix, t) {
            depth -= 1;
        } else if ix.toks[t].is_punct(",") && depth == 0 {
            out.push(std::mem::take(&mut cur));
            continue;
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The rightmost top-level method call: `recv.name(args…)` →
/// `(recv, name, args)`.
fn method_tail(ix: &FileIndex, ts: &[usize]) -> Option<(Vec<usize>, String, Vec<Vec<usize>>)> {
    if ts.len() < 4 || !ix.toks[*ts.last()?].is_punct(")") {
        return None;
    }
    let mut depth = 0i32;
    let mut open_pos = None;
    for p in (0..ts.len()).rev() {
        if is_close(ix, ts[p]) {
            depth += 1;
        } else if is_open(ix, ts[p]) {
            depth -= 1;
            if depth == 0 {
                open_pos = Some(p);
                break;
            }
        }
    }
    let open_pos = open_pos?;
    if open_pos < 3 || !ix.toks[ts[open_pos]].is_punct("(") {
        return None;
    }
    let name_t = &ix.toks[ts[open_pos - 1]];
    if name_t.kind != TokKind::Ident || !ix.toks[ts[open_pos - 2]].is_punct(".") {
        return None;
    }
    let recv = ts[..open_pos - 2].to_vec();
    if recv.is_empty() {
        return None;
    }
    let args = split_args(ix, &ts[open_pos + 1..ts.len() - 1]);
    Some((recv, name_t.text.clone(), args))
}

/// A free/path call `path::to::f(args…)` spanning the whole slice →
/// `(path segments, args)`.
fn call_path(ix: &FileIndex, ts: &[usize]) -> Option<(Vec<String>, Vec<Vec<usize>>)> {
    let open_rel = ts.iter().position(|&t| ix.toks[t].is_punct("("))?;
    if open_rel == 0 {
        return None;
    }
    let mut names = Vec::new();
    for &t in &ts[..open_rel] {
        let tok = &ix.toks[t];
        if tok.kind == TokKind::Ident {
            names.push(tok.text.clone());
        } else if !tok.is_punct("::") {
            return None;
        }
    }
    let mut depth = 0i32;
    let mut close = None;
    for (p, &t) in ts.iter().enumerate().skip(open_rel) {
        if is_open(ix, t) {
            depth += 1;
        } else if is_close(ix, t) {
            depth -= 1;
            if depth == 0 {
                close = Some(p);
                break;
            }
        }
    }
    if close != Some(ts.len() - 1) {
        return None;
    }
    Some((names, split_args(ix, &ts[open_rel + 1..ts.len() - 1])))
}

/// `container.len()` → the container's canonical text.
fn is_len_of(ix: &FileIndex, ts: &[usize]) -> Option<String> {
    let (recv, name, args) = method_tail(ix, ts)?;
    if name == "len" && args.is_empty() {
        Some(norm(ix, &recv))
    } else {
        None
    }
}

/// A bare identifier (after cast/paren stripping).
fn single_ident(ix: &FileIndex, ts: &[usize]) -> Option<String> {
    let ts = normalize(ix, ts);
    if ts.len() == 1 && ix.toks[ts[0]].kind == TokKind::Ident {
        Some(ix.toks[ts[0]].text.clone())
    } else {
        None
    }
}

/// Parses an integer literal (underscores, type suffixes, radix prefixes).
fn int_lit(text: &str) -> Option<i64> {
    let t = text.replace('_', "");
    let t = ["usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8"]
        .iter()
        .find_map(|s| t.strip_suffix(s))
        .unwrap_or(&t);
    if t.is_empty() {
        return None;
    }
    if let Some(h) = t.strip_prefix("0x") {
        i64::from_str_radix(h, 16).ok()
    } else if let Some(b) = t.strip_prefix("0b") {
        i64::from_str_radix(b, 2).ok()
    } else if let Some(o) = t.strip_prefix("0o") {
        i64::from_str_radix(o, 8).ok()
    } else {
        t.parse().ok()
    }
}

// ---------------------------------------------------------------------
// Workspace constant environment
// ---------------------------------------------------------------------

/// Integer `const` items workspace-wide, by bare name, resolved through a
/// short fixpoint so consts defined in terms of other consts fold too.
pub(crate) fn const_env(files: &[(String, FileIndex)]) -> BTreeMap<String, i64> {
    let mut env = BTreeMap::new();
    for _ in 0..3 {
        for (_, ix) in files {
            for (name, ts) in const_decls(ix) {
                if let Some(v) = const_eval(ix, &ts, &env, 0) {
                    env.insert(name, v);
                }
            }
        }
    }
    env
}

/// Live `const NAME: T = <init>;` declarations with their initialiser
/// token slice.
fn const_decls(ix: &FileIndex) -> Vec<(String, Vec<usize>)> {
    let mut out = Vec::new();
    for i in 0..ix.toks.len() {
        if !ix.is_live(i) || !ix.toks[i].is_ident("const") {
            continue;
        }
        let Some(name_i) = next_code(&ix.toks, i + 1) else { continue };
        if ix.toks[name_i].kind != TokKind::Ident {
            continue;
        }
        let mut k = name_i + 1;
        let mut depth = 0i32;
        while k < ix.toks.len() {
            if is_open(ix, k) {
                depth += 1;
            } else if is_close(ix, k) {
                depth -= 1;
            } else if depth == 0
                && ix.toks[k].kind == TokKind::Punct
                && (ix.toks[k].text == "=" || ix.toks[k].text == ";")
            {
                break;
            }
            k += 1;
        }
        if k >= ix.toks.len() || !ix.toks[k].is_punct("=") {
            continue;
        }
        let mut m = k + 1;
        let mut depth = 0i32;
        while m < ix.toks.len() {
            if is_open(ix, m) {
                depth += 1;
            } else if is_close(ix, m) {
                depth -= 1;
            } else if ix.toks[m].is_punct(";") && depth <= 0 {
                break;
            }
            m += 1;
        }
        out.push((ix.toks[name_i].text.clone(), expr_toks(ix, &(k + 1..m))));
    }
    out
}

/// Folds a constant expression: literals, named consts, `+ - * / %`,
/// unary minus, casts, parens, `.min(…)`/`.max(…)`.
pub(crate) fn const_eval(
    ix: &FileIndex,
    ts: &[usize],
    env: &BTreeMap<String, i64>,
    depth: usize,
) -> Option<i64> {
    if depth > 8 || ts.is_empty() {
        return None;
    }
    let ts = normalize(ix, ts);
    if ts.len() == 1 {
        let t = &ix.toks[ts[0]];
        return match t.kind {
            TokKind::NumLit => int_lit(&t.text),
            TokKind::Ident => env.get(&t.text).copied(),
            _ => None,
        };
    }
    if ts.len() == 2 && ix.toks[ts[0]].is_punct("-") {
        return const_eval(ix, &ts[1..], env, depth + 1).map(|v| -v);
    }
    if let Some((l, op, r)) = split_last_top(ix, &ts, &["+", "-"]) {
        let a = const_eval(ix, &l, env, depth + 1)?;
        let b = const_eval(ix, &r, env, depth + 1)?;
        return if op == "+" { a.checked_add(b) } else { a.checked_sub(b) };
    }
    if let Some((l, op, r)) = split_last_top(ix, &ts, &["*", "/", "%"]) {
        let a = const_eval(ix, &l, env, depth + 1)?;
        let b = const_eval(ix, &r, env, depth + 1)?;
        return match op {
            "*" => a.checked_mul(b),
            "/" if b != 0 => Some(a / b),
            "%" if b != 0 => Some(a % b),
            _ => None,
        };
    }
    if let Some((recv, name, args)) = method_tail(ix, &ts) {
        if (name == "min" || name == "max") && args.len() == 1 {
            let a = const_eval(ix, &recv, env, depth + 1)?;
            let b = const_eval(ix, &args[0], env, depth + 1)?;
            return Some(if name == "min" { a.min(b) } else { a.max(b) });
        }
    }
    None
}

// ---------------------------------------------------------------------
// Per-function fact collection
// ---------------------------------------------------------------------

/// An upper-bound expression: a token slice, a container's length, or a
/// known constant.
#[derive(Debug, Clone)]
enum BoundExpr {
    Toks(Vec<usize>),
    LenOf(String),
    Const(i64),
    /// A normalized expression *string* — used for facts that cross file
    /// boundaries (interprocedural method-return summaries), where token
    /// indices of the defining file would be meaningless at the use site.
    Sym(String),
}

/// `var < bound` (strict) or `var <= bound`, valid over `scope`.
#[derive(Debug)]
struct Upper {
    var: String,
    bound: BoundExpr,
    strict: bool,
    scope: Range<usize>,
}

/// `var == <init>` from a `let`, valid over `scope`; `at` re-anchors
/// recursive lookups to the binding site.
#[derive(Debug)]
struct EqFact {
    var: String,
    init: Vec<usize>,
    scope: Range<usize>,
    at: usize,
}

/// `container.len() == len`, valid over `scope`.
#[derive(Debug)]
struct LenFact {
    container: String,
    len: BoundExpr,
    scope: Range<usize>,
}

/// Everything the walker learned about one function body.
#[derive(Debug, Default)]
struct FnFacts {
    uppers: Vec<Upper>,
    eqs: Vec<EqFact>,
    lens: Vec<LenFact>,
    /// Containers proven non-empty (`!c.is_empty()` guards/asserts).
    nonempty: Vec<(String, Range<usize>)>,
    /// `var` is a multiple of `k` over the scope (`let m = n - n % K`).
    aligned: Vec<(String, i64, Range<usize>)>,
    /// `var` is a `chunks_exact(K)` iterator over some slice.
    chunkers: Vec<(String, Vec<usize>, Range<usize>)>,
    /// `var += <rhs>` sites: (var, site, rhs tokens).
    increments: Vec<(String, usize, Vec<usize>)>,
    /// `let mut var = <init>` initialisers.
    mut_inits: Vec<(String, Vec<usize>)>,
    /// Vars hit by a plain `var = …` reassignment (kills alignment).
    reassigned: Vec<String>,
}

impl FnFacts {
    /// Rebinding/reassignment at `pos` ends every earlier fact about
    /// `name` (lexical kill — the symbol now means something else).
    fn kill(&mut self, name: &str, pos: usize) {
        for u in &mut self.uppers {
            if u.var == name && u.scope.start < pos && pos < u.scope.end {
                u.scope.end = pos;
            }
        }
        for e in &mut self.eqs {
            if e.var == name && e.scope.start < pos && pos < e.scope.end {
                e.scope.end = pos;
            }
        }
        for l in &mut self.lens {
            if l.container == name && l.scope.start < pos && pos < l.scope.end {
                l.scope.end = pos;
            }
        }
        for n in &mut self.nonempty {
            if n.0 == name && n.1.start < pos && pos < n.1.end {
                n.1.end = pos;
            }
        }
        for a in &mut self.aligned {
            if a.0 == name && a.2.start < pos && pos < a.2.end {
                a.2.end = pos;
            }
        }
        for c in &mut self.chunkers {
            if c.0 == name && c.2.start < pos && pos < c.2.end {
                c.2.end = pos;
            }
        }
    }
}

/// End of the statement starting at `i`: index of the depth-0 `;` (or
/// `body.end`).
fn stmt_end(ix: &FileIndex, i: usize, body_end: usize) -> usize {
    let mut depth = 0i32;
    let mut m = i;
    while m < body_end {
        if is_open(ix, m) {
            depth += 1;
        } else if is_close(ix, m) {
            depth -= 1;
        } else if ix.toks[m].is_punct(";") && depth <= 0 {
            return m;
        }
        m += 1;
    }
    body_end
}

/// First depth-0 occurrence of a punct/ident `what` in `i..limit`. The
/// match test runs before depth bookkeeping so an opener (`{`) can itself
/// be the target.
fn find_top(ix: &FileIndex, i: usize, limit: usize, what: &str, stop: &[&str]) -> Option<usize> {
    let mut depth = 0i32;
    let mut m = i;
    while m < limit {
        if depth == 0 && ix.is_live(m) {
            let t = &ix.toks[m].text;
            if t == what {
                return Some(m);
            }
            if stop.iter().any(|s| s == t) {
                return None;
            }
        }
        if is_open(ix, m) {
            depth += 1;
        } else if is_close(ix, m) {
            depth -= 1;
            if depth < 0 {
                return None;
            }
        }
        m += 1;
    }
    None
}

/// Identifiers bound by a (possibly nested-tuple) pattern, in token order.
fn pattern_idents(ix: &FileIndex, range: &Range<usize>) -> Vec<String> {
    range
        .clone()
        .filter(|&i| ix.is_live(i) && ix.toks[i].kind == TokKind::Ident)
        .map(|i| ix.toks[i].text.clone())
        .filter(|t| t != "mut" && t != "ref" && t != "_")
        .collect()
}

/// Collects the value facts of one function body in a single forward walk.
fn collect_facts(
    ix: &FileIndex,
    f: &FnItem,
    env: &BTreeMap<String, i64>,
    sums: &Summaries,
) -> FnFacts {
    let mut facts = FnFacts::default();
    collect_param_lens(ix, f, &mut facts);
    let body = f.body.clone();
    let mut i = body.start;
    while i < body.end {
        if !ix.is_live(i) {
            i += 1;
            continue;
        }
        let text = ix.toks[i].text.as_str();
        match text {
            "let" => {
                if let Some(next) = collect_let(ix, i, &body, env, sums, &mut facts) {
                    i = next;
                    continue;
                }
            }
            "for" => if let Some(()) = collect_for(ix, i, &body, &mut facts) {},
            "while" => collect_while(ix, i, &body, &mut facts),
            "if" => collect_if(ix, i, &body, &mut facts),
            "assert" | "debug_assert" => collect_assert(ix, i, &body, &mut facts),
            "assert_eq" | "debug_assert_eq" => collect_assert_eq(ix, i, &body, &mut facts),
            "run" => collect_pool_run(ix, i, &mut facts),
            "windows" => if let Some(()) = collect_windows(ix, i, &mut facts) {},
            "par_row_blocks_mut" => collect_row_blocks(ix, i, &mut facts),
            _ => collect_assignment(ix, i, &body, &mut facts),
        }
        i += 1;
    }
    facts
}

/// Fixed-size-array parameters (`acc: [f32; N]`, `&mut [f32; 8]`) give the
/// parameter a length fact over the whole body.
fn collect_param_lens(ix: &FileIndex, f: &FnItem, facts: &mut FnFacts) {
    let mut last_param: Option<String> = None;
    let mut depth = 0i32;
    let mut i = f.at;
    while i < f.body.start {
        let t = &ix.toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "{" => depth += 1,
                ")" | "}" => depth -= 1,
                "[" if depth >= 1 => {
                    if let (Some(close), Some(name)) = (match_delim(&ix.toks, i), &last_param) {
                        if let Some(semi) = find_top(ix, i + 1, close, ";", &[]) {
                            facts.lens.push(LenFact {
                                container: name.clone(),
                                len: BoundExpr::Toks(expr_toks(ix, &(semi + 1..close))),
                                scope: f.body.clone(),
                            });
                        }
                        i = close;
                    }
                }
                ":" if depth == 1 => {
                    if let Some(p) = prev_code(&ix.toks, i) {
                        if ix.toks[p].kind == TokKind::Ident && !ix.toks[p].is_ident("self") {
                            last_param = Some(ix.toks[p].text.clone());
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// One `let` statement: kill + equality fact + any length/alignment/
/// chunker facts its initialiser yields. Returns the token index to resume
/// the walk from (the statement's `;`).
fn collect_let(
    ix: &FileIndex,
    let_at: usize,
    body: &Range<usize>,
    env: &BTreeMap<String, i64>,
    sums: &Summaries,
    facts: &mut FnFacts,
) -> Option<usize> {
    let mut j = next_code(&ix.toks, let_at + 1)?;
    let is_mut = ix.toks[j].is_ident("mut");
    if is_mut {
        j = next_code(&ix.toks, j + 1)?;
    }
    if ix.toks[j].is_punct("(") {
        return collect_tuple_let(ix, let_at, j, body, env, sums, facts);
    }
    if ix.toks[j].kind != TokKind::Ident || j >= body.end {
        return None;
    }
    let name = ix.toks[j].text.clone();
    let mut k = j + 1;
    let mut depth = 0i32;
    while k < body.end {
        if is_open(ix, k) {
            depth += 1;
        } else if is_close(ix, k) {
            depth -= 1;
        } else if depth == 0 && (ix.toks[k].is_punct("=") || ix.toks[k].is_punct(";")) {
            break;
        }
        k += 1;
    }
    if k >= body.end || !ix.toks[k].is_punct("=") {
        return None;
    }
    let end = stmt_end(ix, k + 1, body.end);
    let init = expr_toks(ix, &(k + 1..end));
    facts.kill(&name, let_at);
    let scope = end..body.end;
    facts.eqs.push(EqFact { var: name.clone(), init: init.clone(), scope: scope.clone(), at: end });
    if is_mut {
        facts.mut_inits.push((name.clone(), init.clone()));
    }
    collect_init_facts(ix, &name, &init, env, sums, scope, facts);
    Some(end)
}

/// Strips leading `&`/`mut` and outer parens from a token list.
fn strip_ref(ix: &FileIndex, mut ts: Vec<usize>) -> Vec<usize> {
    while let Some(&f) = ts.first() {
        if ix.toks[f].is_punct("&") || (ix.toks[f].is_ident("mut") && ts.len() > 1) {
            ts.remove(0);
        } else {
            break;
        }
    }
    strip_outer_parens(ix, &mut ts);
    ts
}

/// `let (a, b) = (e1, e2);` — parallel mini-lets: each pattern ident is
/// killed, bound to its tuple element, and mined for initialiser facts.
/// Non-tuple initialisers (a call returning a tuple) still kill.
fn collect_tuple_let(
    ix: &FileIndex,
    let_at: usize,
    open: usize,
    body: &Range<usize>,
    env: &BTreeMap<String, i64>,
    sums: &Summaries,
    facts: &mut FnFacts,
) -> Option<usize> {
    let close = match_delim(&ix.toks, open)?;
    if close >= body.end {
        return None;
    }
    let pat_list: Vec<usize> = (open + 1..close).filter(|&i| ix.is_live(i)).collect();
    let pat_names: Vec<Option<String>> = split_args(ix, &pat_list)
        .into_iter()
        .map(|mut e| {
            while let Some(&f) = e.first() {
                if ix.toks[f].is_ident("mut") || ix.toks[f].is_ident("ref") {
                    e.remove(0);
                } else {
                    break;
                }
            }
            single_ident(ix, &e)
        })
        .collect();
    let mut k = close + 1;
    let mut depth = 0i32;
    while k < body.end {
        if is_open(ix, k) {
            depth += 1;
        } else if is_close(ix, k) {
            depth -= 1;
        } else if depth == 0 && (ix.toks[k].is_punct("=") || ix.toks[k].is_punct(";")) {
            break;
        }
        k += 1;
    }
    for name in pat_names.iter().flatten() {
        facts.kill(name, let_at);
    }
    if k >= body.end || !ix.toks[k].is_punct("=") {
        return None;
    }
    let end = stmt_end(ix, k + 1, body.end);
    let init = expr_toks(ix, &(k + 1..end));
    let elems = split_args(ix, &init);
    if elems.len() == pat_names.len() {
        for (name, elem) in pat_names.iter().zip(elems) {
            let elem = strip_ref(ix, elem);
            if let Some(name) = name {
                let scope = end..body.end;
                facts.eqs.push(EqFact {
                    var: name.clone(),
                    init: elem.clone(),
                    scope: scope.clone(),
                    at: end,
                });
                collect_init_facts(ix, name, &elem, env, sums, scope, facts);
            }
        }
    }
    Some(end)
}

/// Length/alignment/chunker facts derivable from one initialiser.
fn collect_init_facts(
    ix: &FileIndex,
    name: &str,
    init: &[usize],
    env: &BTreeMap<String, i64>,
    sums: &Summaries,
    scope: Range<usize>,
    facts: &mut FnFacts,
) {
    // `vec![x; E]` — length is E.
    if init.len() >= 3
        && ix.toks[init[0]].is_ident("vec")
        && ix.toks[init[1]].is_punct("!")
        && ix.toks[init[2]].is_punct("[")
    {
        let inner: Vec<usize> = init[3..init.len().saturating_sub(1)].to_vec();
        if let Some(semi) = inner.iter().position(|&t| ix.toks[t].is_punct(";")) {
            facts.lens.push(LenFact {
                container: name.to_string(),
                len: BoundExpr::Toks(inner[semi + 1..].to_vec()),
                scope,
            });
        }
        return;
    }
    // Array literal `[x; E]` / `[a, b, c]`.
    if !init.is_empty() && ix.toks[init[0]].is_punct("[") && is_close(ix, init[init.len() - 1]) {
        let inner = &init[1..init.len() - 1];
        let mut depth = 0i32;
        let mut semi = None;
        let mut commas = 0usize;
        for (p, &t) in inner.iter().enumerate() {
            if is_open(ix, t) {
                depth += 1;
            } else if is_close(ix, t) {
                depth -= 1;
            } else if depth == 0 && ix.toks[t].is_punct(";") {
                semi = Some(p);
            } else if depth == 0 && ix.toks[t].is_punct(",") {
                commas += 1;
            }
        }
        let len = match semi {
            Some(p) => Some(BoundExpr::Toks(inner[p + 1..].to_vec())),
            None if !inner.is_empty() => Some(BoundExpr::Const(commas as i64 + 1)),
            None => None,
        };
        if let Some(len) = len {
            facts.lens.push(LenFact { container: name.to_string(), len, scope });
        }
        return;
    }
    // Partition providers: `split_even(n, parts)` / `split_by_weight(w, parts)`
    // return exactly `parts` ranges — the static twin of the runtime
    // disjointness sanitizer's range-count check.
    if let Some((names, args)) = call_path(ix, init) {
        if let Some(last) = names.last() {
            if (last == "split_even" || last == "split_by_weight") && args.len() >= 2 {
                facts.lens.push(LenFact {
                    container: name.to_string(),
                    len: BoundExpr::Toks(args[1].clone()),
                    scope,
                });
                return;
            }
        }
    }
    if let Some((recv, mname, margs)) = method_tail(ix, init) {
        if (mname == "chunks_exact" || mname == "chunks_exact_mut") && margs.len() == 1 {
            facts.chunkers.push((name.to_string(), margs[0].clone(), scope));
            return;
        }
        // Interprocedural: a summarized slice-returning method gives the
        // binding a symbolic length (`let a_row = a.row(i)` → `a.cols`).
        if let Some(path) = sums.slice_rets.get(&mname) {
            facts.lens.push(LenFact {
                container: name.to_string(),
                len: BoundExpr::Sym(format!("{}.{path}", norm(ix, &normalize(ix, &recv)))),
                scope: scope.clone(),
            });
            return;
        }
    }
    // `X[lo..lo + K]` / `X[..K]` — name is a slice of known length K.
    if init.len() >= 4 && ix.toks[init[init.len() - 1]].is_punct("]") {
        let mut depth = 0i32;
        let mut open_pos = None;
        for p in (0..init.len()).rev() {
            if is_close(ix, init[p]) {
                depth += 1;
            } else if is_open(ix, init[p]) {
                depth -= 1;
                if depth == 0 {
                    open_pos = Some(p);
                    break;
                }
            }
        }
        if let Some(op) = open_pos {
            if op > 0 && ix.toks[init[op]].is_punct("[") {
                let inner = &init[op + 1..init.len() - 1];
                if let Some((lo, hi, false)) = split_last_range(ix, inner) {
                    let len = if lo.is_empty() && !hi.is_empty() {
                        Some(hi)
                    } else {
                        split_last_top(ix, &hi, &["+"]).and_then(|(pl, _, pr)| {
                            (norm(ix, &normalize(ix, &pl)) == norm(ix, &normalize(ix, &lo)))
                                .then_some(pr)
                        })
                    };
                    if let Some(len) = len {
                        facts.lens.push(LenFact {
                            container: name.to_string(),
                            len: BoundExpr::Toks(len),
                            scope: scope.clone(),
                        });
                        return;
                    }
                }
            }
        }
    }
    // `X - X % K` — name is a K-aligned prefix length.
    if let Some((l, _, r)) = split_last_top(ix, init, &["-"]) {
        if let Some((ml, _, mr)) = split_last_top(ix, &r, &["%"]) {
            if norm(ix, &normalize(ix, &l)) == norm(ix, &normalize(ix, &ml)) {
                if let Some(k) = const_eval(ix, &mr, env, 0) {
                    if k > 0 {
                        facts.aligned.push((name.to_string(), k, scope));
                    }
                }
            }
        }
    }
}

/// `recv.windows(K).all(|w| …)` — the adapter yields exactly-`K`-length
/// windows, so the closure parameter carries a length fact over the
/// closure body.
fn collect_windows(ix: &FileIndex, at: usize, facts: &mut FnFacts) -> Option<()> {
    if !prev_code(&ix.toks, at).is_some_and(|p| ix.toks[p].is_punct(".")) {
        return None;
    }
    let open = next_code(&ix.toks, at + 1)?;
    if !ix.toks[open].is_punct("(") {
        return None;
    }
    let close = match_delim(&ix.toks, open)?;
    let k = expr_toks(ix, &(open + 1..close));
    if k.is_empty() {
        return None;
    }
    let dot = next_code(&ix.toks, close + 1)?;
    let m = next_code(&ix.toks, dot + 1)?;
    let open2 = next_code(&ix.toks, m + 1)?;
    if !ix.toks[dot].is_punct(".")
        || ix.toks[m].kind != TokKind::Ident
        || !ix.toks[open2].is_punct("(")
    {
        return None;
    }
    let close2 = match_delim(&ix.toks, open2)?;
    let bar = next_code(&ix.toks, open2 + 1)?;
    let p = next_code(&ix.toks, bar + 1)?;
    let bar2 = next_code(&ix.toks, p + 1)?;
    if !ix.toks[bar].is_punct("|")
        || ix.toks[p].kind != TokKind::Ident
        || !ix.toks[bar2].is_punct("|")
    {
        return None;
    }
    facts.lens.push(LenFact {
        container: ix.toks[p].text.clone(),
        len: BoundExpr::Toks(k),
        scope: open2..close2 + 1,
    });
    Some(())
}

/// `for <pat> in <iter> { … }` — range bounds, `.enumerate()` indices and
/// `chunks_exact` zip chains all yield facts scoped to the loop body.
fn collect_for(ix: &FileIndex, at: usize, body: &Range<usize>, facts: &mut FnFacts) -> Option<()> {
    let in_at = find_top(ix, at + 1, body.end, "in", &["{", ";"])?;
    let brace = find_top(ix, in_at + 1, body.end, "{", &[";"])?;
    let close = match_delim(&ix.toks, brace)?;
    let loop_body = brace..close + 1;
    let pats = pattern_idents(ix, &(at + 1..in_at));
    for p in &pats {
        facts.kill(p, at);
    }
    let iter = expr_toks(ix, &(in_at + 1..brace));
    // `lo..hi` / `lo..=hi` with a single-ident pattern (lower bounds are
    // not tracked — indices are usize, so ≥ 0 is free).
    for (op, strict) in [("..", true), ("..=", false)] {
        if let Some((_, o, hi)) = split_last_top(ix, &iter, &[op]) {
            if o == op && pats.len() == 1 && !hi.is_empty() {
                facts.uppers.push(Upper {
                    var: pats[0].clone(),
                    bound: bound_of(ix, &hi),
                    strict,
                    scope: loop_body.clone(),
                });
                return Some(());
            }
        }
    }
    // `.enumerate()` — first tuple element indexes the iterated container.
    if let Some((recv, name, args)) = method_tail(ix, &iter) {
        if name == "enumerate" && args.is_empty() && !pats.is_empty() {
            let base = match method_tail(ix, &recv) {
                Some((r, n, a))
                    if a.is_empty() && matches!(n.as_str(), "iter" | "iter_mut" | "into_iter") =>
                {
                    r
                }
                _ => recv.clone(),
            };
            facts.uppers.push(Upper {
                var: pats[0].clone(),
                bound: BoundExpr::LenOf(norm(ix, &normalize(ix, &base))),
                strict: true,
                scope: loop_body.clone(),
            });
            return Some(());
        }
    }
    // Zip chains over `chunks_exact` iterators: each pattern element bound
    // to a chunk gets a length fact of the chunk size. A chain bound to a
    // local first (`let chunks = …zip(…); for … in chunks`) resolves
    // through the equality fact.
    let mut cur = iter.clone();
    if let Some(name) = single_ident(ix, &cur) {
        if let Some(eq) = facts.eqs.iter().rev().find(|e| e.var == name && e.scope.contains(&at)) {
            cur = eq.init.clone();
        }
    }
    let mut elems: Vec<Vec<usize>> = Vec::new();
    while let Some((recv, name, args)) = method_tail(ix, &cur) {
        if name == "zip" && args.len() == 1 {
            elems.push(args[0].clone());
            cur = recv;
        } else {
            break;
        }
    }
    elems.push(cur);
    elems.reverse();
    if elems.len() == pats.len() {
        for (pat, elem) in pats.iter().zip(&elems) {
            if let Some(k) = chunk_width(ix, elem, facts, at) {
                facts.lens.push(LenFact {
                    container: pat.clone(),
                    len: BoundExpr::Toks(k),
                    scope: loop_body.clone(),
                });
            }
        }
    }
    Some(())
}

/// If `elem` is a `chunks_exact(K)` expression (directly, via a bound
/// chunker, or through `.by_ref()`), the chunk width `K`.
fn chunk_width(ix: &FileIndex, elem: &[usize], facts: &FnFacts, pos: usize) -> Option<Vec<usize>> {
    if let Some((_, name, args)) = method_tail(ix, elem) {
        if (name == "chunks_exact" || name == "chunks_exact_mut") && args.len() == 1 {
            return Some(args[0].clone());
        }
    }
    let name = single_ident(ix, elem).or_else(|| {
        // `ch.by_ref()`
        method_tail(ix, elem).and_then(|(recv, n, a)| {
            if n == "by_ref" && a.is_empty() {
                single_ident(ix, &recv)
            } else {
                None
            }
        })
    })?;
    facts
        .chunkers
        .iter()
        .rev()
        .find(|(c, _, scope)| *c == name && scope.contains(&pos))
        .map(|(_, k, _)| k.clone())
}

/// `while <cond> { … }` — `v < E` / `v <= E` conjuncts bound `v` in the
/// loop body.
fn collect_while(ix: &FileIndex, at: usize, body: &Range<usize>, facts: &mut FnFacts) {
    let Some(brace) = find_top(ix, at + 1, body.end, "{", &[";"]) else { return };
    let Some(close) = match_delim(&ix.toks, brace) else { return };
    let cond = expr_toks(ix, &(at + 1..brace));
    collect_conjuncts(ix, &cond, brace..close + 1, facts);
}

/// `if <cond> { … }` — either scoped guards (facts in the then-body) or,
/// when the body immediately `return`s, negated early-exit guards valid to
/// the end of the function: `¬(a ≥ n ‖ b > m)` ⇒ `a < n ∧ b ≤ m`.
fn collect_if(ix: &FileIndex, at: usize, body: &Range<usize>, facts: &mut FnFacts) {
    let Some(next) = next_code(&ix.toks, at + 1) else { return };
    if ix.toks[next].is_ident("let") {
        return; // `if let` patterns carry no numeric guard
    }
    let Some(brace) = find_top(ix, at + 1, body.end, "{", &[";"]) else { return };
    let Some(close) = match_delim(&ix.toks, brace) else { return };
    let cond = expr_toks(ix, &(at + 1..brace));
    let first_in_body = next_code(&ix.toks, brace + 1);
    let early_return = first_in_body.is_some_and(|j| j < close && ix.toks[j].is_ident("return"));
    if early_return {
        let scope = close + 1..body.end;
        for disj in split_all_top(ix, &cond, "||") {
            collect_negated(ix, &disj, scope.clone(), facts);
        }
    } else {
        collect_conjuncts(ix, &cond, brace..close + 1, facts);
    }
}

/// All top-level `op`-separated pieces of a condition.
fn split_all_top(ix: &FileIndex, ts: &[usize], op: &str) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = ts.to_vec();
    while let Some((l, _, r)) = split_last_top(ix, &cur, &[op]) {
        out.push(r);
        cur = l;
    }
    out.push(cur);
    out.reverse();
    out
}

/// Positive conjuncts (`a && b && …`): each may yield an upper bound or a
/// non-emptiness fact over `scope`.
fn collect_conjuncts(ix: &FileIndex, cond: &[usize], scope: Range<usize>, facts: &mut FnFacts) {
    for conj in split_all_top(ix, cond, "&&") {
        // `!c.is_empty()`
        if conj.first().is_some_and(|&t| ix.toks[t].is_punct("!")) {
            if let Some((recv, name, args)) = method_tail(ix, &conj[1..]) {
                if name == "is_empty" && args.is_empty() {
                    facts.nonempty.push((norm(ix, &normalize(ix, &recv)), scope.clone()));
                }
            }
            continue;
        }
        for (op, strict) in [("<", true), ("<=", false)] {
            if let Some((l, _, r)) = split_last_top(ix, &conj, &[op]) {
                if let Some(v) = single_ident(ix, &l) {
                    facts.uppers.push(Upper {
                        var: v,
                        bound: bound_of(ix, &r),
                        strict,
                        scope: scope.clone(),
                    });
                }
            }
        }
        // Reversed comparison: `E > v` / `E >= v`.
        for (op, strict) in [(">", true), (">=", false)] {
            if let Some((l, _, r)) = split_last_top(ix, &conj, &[op]) {
                if let Some(v) = single_ident(ix, &r) {
                    facts.uppers.push(Upper {
                        var: v,
                        bound: bound_of(ix, &l),
                        strict,
                        scope: scope.clone(),
                    });
                }
            }
        }
    }
}

/// One negated early-return disjunct: `v >= E` ⇒ `v < E`, `v > E` ⇒
/// `v <= E`, `c.is_empty()` ⇒ `!c.is_empty()` — all valid after the `if`.
fn collect_negated(ix: &FileIndex, disj: &[usize], scope: Range<usize>, facts: &mut FnFacts) {
    if let Some((recv, name, args)) = method_tail(ix, disj) {
        if name == "is_empty" && args.is_empty() {
            facts.nonempty.push((norm(ix, &normalize(ix, &recv)), scope));
            return;
        }
    }
    for (op, strict) in [(">=", true), (">", false)] {
        if let Some((l, o, r)) = split_last_top(ix, disj, &[op]) {
            if o == op {
                if let Some(v) = single_ident(ix, &l) {
                    facts.uppers.push(Upper { var: v, bound: bound_of(ix, &r), strict, scope });
                    return;
                }
            }
        }
    }
    // Reversed: `E <= v` ⇒ `v > …` is a lower bound — not tracked.
}

/// An upper-bound expression, preferring `LenOf` when the bound is a plain
/// `c.len()`.
fn bound_of(ix: &FileIndex, ts: &[usize]) -> BoundExpr {
    let ts = normalize(ix, ts);
    match is_len_of(ix, &ts) {
        Some(c) => BoundExpr::LenOf(c),
        None => BoundExpr::Toks(ts),
    }
}

/// `assert!(cond)` / `debug_assert!(cond)` — conjunct facts valid from the
/// assertion to the end of the function.
fn collect_assert(ix: &FileIndex, at: usize, body: &Range<usize>, facts: &mut FnFacts) {
    let Some(bang) = next_code(&ix.toks, at + 1) else { return };
    if !ix.toks[bang].is_punct("!") {
        return;
    }
    let Some(open) = next_code(&ix.toks, bang + 1) else { return };
    if !ix.toks[open].is_punct("(") {
        return;
    }
    let Some(close) = match_delim(&ix.toks, open) else { return };
    let args = split_args(ix, &expr_toks(ix, &(open + 1..close)));
    if let Some(cond) = args.first() {
        collect_conjuncts(ix, cond, close + 1..body.end, facts);
    }
}

/// `assert_eq!(a.len(), n)` (either order) pins a length fact from the
/// assertion to the end of the function.
fn collect_assert_eq(ix: &FileIndex, at: usize, body: &Range<usize>, facts: &mut FnFacts) {
    let Some(bang) = next_code(&ix.toks, at + 1) else { return };
    if !ix.toks[bang].is_punct("!") {
        return;
    }
    let Some(open) = next_code(&ix.toks, bang + 1) else { return };
    if !ix.toks[open].is_punct("(") {
        return;
    }
    let Some(close) = match_delim(&ix.toks, open) else { return };
    let args = split_args(ix, &expr_toks(ix, &(open + 1..close)));
    if args.len() < 2 {
        return;
    }
    let scope = close + 1..body.end;
    for (a, b) in [(&args[0], &args[1]), (&args[1], &args[0])] {
        if let Some(c) = is_len_of(ix, &normalize(ix, a)) {
            facts.lens.push(LenFact { container: c, len: bound_of(ix, b), scope: scope.clone() });
        }
    }
}

/// `pool::run(n, |task| …)` — the closure parameter ranges over
/// `0..n_tasks`, the contract the runtime disjointness sanitizer enforces
/// dynamically.
fn collect_pool_run(ix: &FileIndex, at: usize, facts: &mut FnFacts) {
    let qualified = prev_code(&ix.toks, at)
        .filter(|&j| ix.toks[j].is_punct("::"))
        .and_then(|j| prev_code(&ix.toks, j))
        .is_some_and(|j| ix.toks[j].is_ident("pool") || ix.toks[j].is_ident("amud_par"));
    if !qualified {
        return;
    }
    let Some(args) = crate::workspace::call_args(ix, at) else { return };
    if args.len() < 2 {
        return;
    }
    bind_closure_param(ix, &args[1], &args[0], facts);
}

/// `par_row_blocks_mut(data, cols, parts, |b, …| …)` — the closure's first
/// parameter indexes `parts`.
fn collect_row_blocks(ix: &FileIndex, at: usize, facts: &mut FnFacts) {
    let Some(args) = crate::workspace::call_args(ix, at) else { return };
    if args.len() < 4 {
        return;
    }
    let parts = expr_toks(ix, &args[2]);
    let Some(pname) = single_ident(ix, &parts) else { return };
    let closure: Vec<usize> = args[3].clone().filter(|&i| ix.is_live(i)).collect();
    let Some(bar) = closure.iter().position(|&t| ix.toks[t].is_punct("|")) else { return };
    let Some(close_bar) = closure[bar + 1..].iter().position(|&t| ix.toks[t].is_punct("|")) else {
        return;
    };
    let params = &closure[bar + 1..bar + 1 + close_bar];
    let Some(&first) = params.first() else { return };
    if ix.toks[first].kind != TokKind::Ident || ix.toks[first].text == "_" {
        return;
    }
    let name = ix.toks[first].text.clone();
    facts.kill(&name, first);
    facts.uppers.push(Upper {
        var: name,
        bound: BoundExpr::LenOf(pname),
        strict: true,
        scope: args[3].clone(),
    });
}

/// Binds a closure's first parameter to `0..bound` over the closure span.
fn bind_closure_param(
    ix: &FileIndex,
    closure: &Range<usize>,
    bound: &Range<usize>,
    facts: &mut FnFacts,
) {
    let toks: Vec<usize> = closure.clone().filter(|&i| ix.is_live(i)).collect();
    let Some(bar) = toks.iter().position(|&t| ix.toks[t].is_punct("|")) else { return };
    let Some(close_bar) = toks[bar + 1..].iter().position(|&t| ix.toks[t].is_punct("|")) else {
        return;
    };
    let params = &toks[bar + 1..bar + 1 + close_bar];
    let Some(&first) = params.first() else { return };
    if ix.toks[first].kind != TokKind::Ident || ix.toks[first].text == "_" {
        return;
    }
    let name = ix.toks[first].text.clone();
    facts.kill(&name, first);
    facts.uppers.push(Upper {
        var: name,
        bound: BoundExpr::Toks(expr_toks(ix, bound)),
        strict: true,
        scope: closure.clone(),
    });
}

/// Plain reassignment kills facts; compound `+=` feeds alignment tracking.
fn collect_assignment(ix: &FileIndex, at: usize, body: &Range<usize>, facts: &mut FnFacts) {
    if ix.toks[at].kind != TokKind::Ident {
        return;
    }
    // Field/path positions are not local rebinds.
    if prev_code(&ix.toks, at)
        .is_some_and(|j| ix.toks[j].is_punct(".") || ix.toks[j].is_punct("::"))
    {
        return;
    }
    let Some(next) = next_code(&ix.toks, at + 1) else { return };
    let name = ix.toks[at].text.clone();
    let op = ix.toks[next].text.as_str();
    if ix.toks[next].kind != TokKind::Punct {
        return;
    }
    match op {
        "=" => {
            facts.kill(&name, at);
            facts.reassigned.push(name);
        }
        "+=" => {
            let end = stmt_end(ix, next + 1, body.end);
            facts.increments.push((name, at, expr_toks(ix, &(next + 1..end))));
        }
        "-=" | "*=" | "/=" | "%=" | "<<=" | ">>=" | "&=" | "|=" | "^=" => {
            facts.kill(&name, at);
            facts.reassigned.push(name);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// The prover
// ---------------------------------------------------------------------

/// Interprocedural return-value summaries mined from single-expression
/// method bodies, keyed by method name. A name that summarizes
/// differently in two impls is dropped — name-keyed summaries must be
/// unambiguous workspace-wide to be sound.
///
/// - `getters`: `fn cols(&self) -> usize { self.cols }` ⇒ `x.cols()`
///   canonicalizes to `x.cols` in proof-obligation strings.
/// - `slice_rets`: `fn row(&self, r) -> &[T] { &self.data[r * self.cols
///   .. (r + 1) * self.cols] }` ⇒ `x.row(i)` yields a slice of `x.cols`
///   elements (the field path is stored relative to the receiver).
#[derive(Debug, Default)]
pub(crate) struct Summaries {
    getters: BTreeMap<String, String>,
    slice_rets: BTreeMap<String, String>,
}

impl Summaries {
    /// The symbolic length of a method-call *container* (`self.row(r)` →
    /// `self.cols`), for sites that index straight into a call result.
    fn container_sym(&self, container: &str) -> Option<String> {
        if !container.ends_with(')') {
            return None;
        }
        let head = &container[..container.find('(')?];
        let dot = head.rfind('.')?;
        let path = self.slice_rets.get(&head[dot + 1..])?;
        Some(format!("{}.{path}", &head[..dot]))
    }
}

fn method_summaries(files: &[(String, FileIndex)]) -> Summaries {
    let mut sums = Summaries::default();
    let mut dead: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let insert = |map: &mut BTreeMap<String, String>,
                  dead: &mut std::collections::BTreeSet<String>,
                  name: &str,
                  val: String| {
        match map.get(name) {
            Some(v) if *v == val => {}
            Some(_) => {
                map.remove(name);
                dead.insert(name.to_string());
            }
            None if dead.contains(name) => {}
            None => {
                map.insert(name.to_string(), val);
            }
        }
    };
    for (_, ix) in files {
        for f in ix.fn_items() {
            if !ix.is_live(f.at) || f.body.len() < 2 {
                continue;
            }
            let ts = expr_toks(ix, &(f.body.start + 1..f.body.end - 1));
            // Getter: body is exactly `self.<field>`.
            if ts.len() == 3
                && ix.toks[ts[0]].is_ident("self")
                && ix.toks[ts[1]].is_punct(".")
                && ix.toks[ts[2]].kind == TokKind::Ident
            {
                insert(&mut sums.getters, &mut dead, &f.name, ix.toks[ts[2]].text.clone());
                continue;
            }
            // Slice return: body is exactly `&[mut] self.<field>[E1..E2]`.
            if ts.len() >= 7
                && ix.toks[ts[0]].is_ident("self")
                && ix.toks[ts[1]].is_punct(".")
                && ix.toks[ts[2]].kind == TokKind::Ident
                && ix.toks[ts[3]].is_punct("[")
                && is_close(ix, ts[ts.len() - 1])
            {
                let inner = &ts[4..ts.len() - 1];
                let Some((lo, hi, false)) = split_last_range(ix, inner) else { continue };
                let len = if let Some((pl, _, pr)) = split_last_top(ix, &hi, &["+"]) {
                    // `E1 .. E1 + K` — length K.
                    (norm(ix, &normalize(ix, &pl)) == norm(ix, &normalize(ix, &lo))).then_some(pr)
                } else {
                    // `r·X .. (r + 1)·X` — length X.
                    match (
                        split_last_top(ix, &normalize(ix, &lo), &["*"]),
                        split_last_top(ix, &normalize(ix, &hi), &["*"]),
                    ) {
                        (Some((ll, _, lr)), Some((hl, _, hr)))
                            if norm(ix, &normalize(ix, &lr)) == norm(ix, &normalize(ix, &hr))
                                && norm(ix, &normalize(ix, &hl))
                                    == format!("{}+1", norm(ix, &normalize(ix, &ll))) =>
                        {
                            Some(hr)
                        }
                        _ => None,
                    }
                };
                if let Some(len) = len {
                    let len_str = norm(ix, &normalize(ix, &len));
                    if let Some(path) = len_str.strip_prefix("self.") {
                        if !path.contains("self") {
                            insert(&mut sums.slice_rets, &mut dead, &f.name, path.to_string());
                        }
                    }
                }
            }
        }
    }
    sums
}

const MAX_PROOF_DEPTH: usize = 7;

struct Prover<'a> {
    ix: &'a FileIndex,
    facts: &'a FnFacts,
    env: &'a BTreeMap<String, i64>,
    sums: &'a Summaries,
    /// The access site under proof. Container facts (lengths, non-empty)
    /// are evaluated here: equality hops rewind `pos` to binding points
    /// where a loop-scoped length fact is not yet visible, but the access
    /// itself happens at the site, so that is where `c.len()` is read.
    site: std::cell::Cell<usize>,
}

impl<'a> Prover<'a> {
    /// Rewrites parameterless getter calls to their field (`a.cols()` →
    /// `a.cols`) so symbolic summary lengths compare across idioms.
    fn canon(&self, s: &str) -> String {
        let mut s = s.to_string();
        for (m, fld) in &self.sums.getters {
            s = s.replace(&format!(".{m}()"), &format!(".{fld}"));
        }
        s
    }

    fn eqs_of(&self, name: &str, pos: usize) -> Vec<&EqFact> {
        self.facts.eqs.iter().filter(|e| e.var == name && e.scope.contains(&pos)).collect()
    }

    fn uppers_of(&self, name: &str, pos: usize) -> Vec<&Upper> {
        self.facts.uppers.iter().filter(|u| u.var == name && u.scope.contains(&pos)).collect()
    }

    fn lens_of(&self, container: &str, pos: usize) -> Vec<&LenFact> {
        let at = pos.max(self.site.get());
        self.facts
            .lens
            .iter()
            .filter(|l| l.container == container && l.scope.contains(&at))
            .collect()
    }

    fn nonempty(&self, container: &str, pos: usize) -> bool {
        let at = pos.max(self.site.get());
        self.facts.nonempty.iter().any(|(c, s)| c == container && s.contains(&at))
    }

    /// Constant lengths known for `container` at `pos`.
    fn len_consts(&self, container: &str, pos: usize) -> Vec<i64> {
        self.lens_of(container, pos)
            .iter()
            .filter_map(|l| match &l.len {
                BoundExpr::Const(v) => Some(*v),
                BoundExpr::Toks(ts) => const_eval(self.ix, ts, self.env, 0),
                BoundExpr::LenOf(_) | BoundExpr::Sym(_) => None,
            })
            .collect()
    }

    /// `var` is provably a multiple of `k` at `pos`: a recorded alignment
    /// fact, or `let mut var = 0` advanced only by `var += c·k` with no
    /// plain reassignment (the lane-tail accumulator idiom). Only
    /// increments lexically before `limit` count — an increment after the
    /// bounding loop (the scalar tail's `j += 1`) can never have executed
    /// while control is still inside it.
    fn aligned_var(&self, var: &str, k: i64, pos: usize, limit: usize) -> bool {
        if self.facts.aligned.iter().any(|(v, kk, s)| v == var && *kk == k && s.contains(&pos)) {
            return true;
        }
        if self.facts.reassigned.iter().any(|v| v == var) {
            return false;
        }
        let init_ok = self.facts.mut_inits.iter().any(|(v, init)| {
            v == var && const_eval(self.ix, init, self.env, 0).is_some_and(|c| c % k == 0)
        });
        if !init_ok {
            return false;
        }
        let incs: Vec<_> =
            self.facts.increments.iter().filter(|(v, at, _)| v == var && *at < limit).collect();
        !incs.is_empty()
            && incs.iter().all(|(_, _, rhs)| {
                const_eval(self.ix, rhs, self.env, 0).is_some_and(|c| c % k == 0)
            })
    }

    /// The bound expression `m` is `k`-aligned: a `X - X % k` shape, an
    /// aligned variable, or an equality hop away from either.
    fn aligned_bound(&self, m: &BoundExpr, k: i64, pos: usize, depth: usize) -> bool {
        if depth > MAX_PROOF_DEPTH {
            return false;
        }
        let ts = match m {
            BoundExpr::Toks(ts) => ts.clone(),
            BoundExpr::Const(v) => return v % k == 0,
            BoundExpr::LenOf(_) | BoundExpr::Sym(_) => return false,
        };
        let ts = normalize(self.ix, &ts);
        if let Some((l, _, r)) = split_last_top(self.ix, &ts, &["-"]) {
            if let Some((ml, _, mr)) = split_last_top(self.ix, &r, &["%"]) {
                if norm(self.ix, &normalize(self.ix, &l)) == norm(self.ix, &normalize(self.ix, &ml))
                    && const_eval(self.ix, &mr, self.env, 0) == Some(k)
                {
                    return true;
                }
            }
        }
        if let Some(name) = single_ident(self.ix, &ts) {
            if self.aligned_var(&name, k, pos, usize::MAX) {
                return true;
            }
            for eq in self.eqs_of(&name, pos) {
                if self.aligned_bound(&BoundExpr::Toks(eq.init.clone()), k, eq.at, depth + 1) {
                    return true;
                }
            }
        }
        false
    }

    /// Proves `e ≤ c.len()` at `pos`.
    fn prove_le(&self, e: &[usize], c: &str, pos: usize, depth: usize) -> bool {
        if depth > MAX_PROOF_DEPTH {
            return false;
        }
        let ts = normalize(self.ix, e);
        if ts.is_empty() {
            return true; // an open range end: `c[lo..]` slices to len
        }
        // `e` is literally `c.len()`.
        if is_len_of(self.ix, &ts).as_deref() == Some(c) {
            return true;
        }
        let ne = norm(self.ix, &ts);
        let ce = const_eval(self.ix, &ts, self.env, 0);
        for lf in self.lens_of(c, pos) {
            match &lf.len {
                BoundExpr::Const(v) => {
                    if ce.is_some_and(|x| x <= *v) {
                        return true;
                    }
                }
                BoundExpr::Toks(lts) => {
                    let lnorm_ts = normalize(self.ix, lts);
                    if norm(self.ix, &lnorm_ts) == ne {
                        return true;
                    }
                    if let Some(v) = const_eval(self.ix, &lnorm_ts, self.env, 0) {
                        if ce.is_some_and(|x| x <= v) {
                            return true;
                        }
                    }
                    // len == L' + k2 with k2 ≥ 0 and e == L'.
                    if let Some((ll, _, lr)) = split_last_top(self.ix, &lnorm_ts, &["+"]) {
                        if const_eval(self.ix, &lr, self.env, 0).is_some_and(|k2| k2 >= 0)
                            && norm(self.ix, &normalize(self.ix, &ll)) == ne
                        {
                            return true;
                        }
                    }
                }
                BoundExpr::LenOf(other) => {
                    // c.len() == other.len(): e ≤ other.len() ⇒ e ≤ c.len().
                    if is_len_of(self.ix, &ts).as_deref() == Some(other.as_str()) {
                        return true;
                    }
                }
                BoundExpr::Sym(sym) => {
                    if self.canon(&ne) == self.canon(sym) {
                        return true;
                    }
                }
            }
        }
        if let Some(name) = single_ident(self.ix, &ts) {
            for eq in self.eqs_of(&name, pos) {
                if self.prove_le(&eq.init, c, eq.at, depth + 1) {
                    return true;
                }
            }
            for u in self.uppers_of(&name, pos) {
                match &u.bound {
                    BoundExpr::LenOf(b) if b == c => return true,
                    BoundExpr::LenOf(_) | BoundExpr::Const(_) | BoundExpr::Sym(_) => {}
                    BoundExpr::Toks(b) => {
                        if self.prove_le(b, c, pos, depth + 1) {
                            return true;
                        }
                    }
                }
            }
        }
        // Structural rules. These recurse on a strictly smaller token
        // slice, so they keep the caller's depth — only eq/upper hops
        // (which can revisit same-size expressions) burn fuel.
        if let Some((l, op, r)) = split_last_top(self.ix, &ts, &["+", "-"]) {
            match op {
                // usize subtraction cannot increase the value.
                "-" if self.prove_le(&l, c, pos, depth) => {
                    return true;
                }
                "+" => {
                    if let Some(k) = const_eval(self.ix, &r, self.env, 0) {
                        if k >= 0 && self.prove_plus_le(&l, k, c, pos, depth) {
                            return true;
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some((l, op, r)) = split_last_top(self.ix, &ts, &["*", "/", "%"]) {
            match op {
                "%"
                    // a % b ≤ min(a, b-1) when executed (b ≠ 0).
                    if (self.prove_le(&l, c, pos, depth)
                        || self.prove_le(&r, c, pos, depth))
                    => {
                        return true;
                    }
                "/"
                    if const_eval(self.ix, &r, self.env, 0).is_some_and(|v| v >= 1)
                        && self.prove_le(&l, c, pos, depth)
                    => {
                        return true;
                    }
                // a·K ≤ c.len() when a ≤ X/K for some X ≤ c.len() —
                // integer division: (X/K)·K ≤ X.
                "*"
                    if const_eval(self.ix, &r, self.env, 0)
                        .is_some_and(|k| k >= 1 && self.le_div_len(&l, c, k, pos, depth))
                    => {
                        return true;
                    }
                _ => {}
            }
        }
        if let Some((recv, name, args)) = method_tail(self.ix, &ts) {
            if name == "min"
                && args.len() == 1
                && (self.prove_le(&recv, c, pos, depth) || self.prove_le(&args[0], c, pos, depth))
            {
                return true;
            }
        }
        // Interval fallback: a constant upper bound under a constant
        // length.
        if let Some(ub) = self.upper_const(&ts, pos, depth) {
            if self.len_consts(c, pos).iter().any(|&v| ub <= v) {
                return true;
            }
        }
        false
    }

    /// Proves `e ≤ X / k` for some `X ≤ c.len()` — the scaled-prefix rule
    /// behind `b4[..main * 4]` where `main ≤ n ≤ b4.len() / 4`.
    fn le_div_len(&self, e: &[usize], c: &str, k: i64, pos: usize, depth: usize) -> bool {
        if depth > MAX_PROOF_DEPTH {
            return false;
        }
        let ts = normalize(self.ix, e);
        if let Some((l, _, r)) = split_last_top(self.ix, &ts, &["/"]) {
            if const_eval(self.ix, &r, self.env, 0) == Some(k) && self.prove_le(&l, c, pos, depth) {
                return true;
            }
        }
        if let Some((l, op, _)) = split_last_top(self.ix, &ts, &["-", "%"]) {
            // Subtraction / remainder cannot increase a usize value.
            if (op == "-" || op == "%") && self.le_div_len(&l, c, k, pos, depth) {
                return true;
            }
        }
        if let Some((recv, name, args)) = method_tail(self.ix, &ts) {
            if name == "min"
                && args.len() == 1
                && (self.le_div_len(&recv, c, k, pos, depth)
                    || self.le_div_len(&args[0], c, k, pos, depth))
            {
                return true;
            }
        }
        if let Some(name) = single_ident(self.ix, &ts) {
            for eq in self.eqs_of(&name, pos) {
                if self.le_div_len(&eq.init, c, k, eq.at, depth + 1) {
                    return true;
                }
            }
            for u in self.uppers_of(&name, pos) {
                if let BoundExpr::Toks(b) = &u.bound {
                    if self.le_div_len(b, c, k, pos, depth + 1) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Conservative constant upper bound of `e` at `pos`, from constant
    /// evaluation, loop/guard uppers and equality hops — the interval
    /// half of the domain. All values are usize-context (non-negative).
    fn upper_const(&self, e: &[usize], pos: usize, depth: usize) -> Option<i64> {
        if depth > MAX_PROOF_DEPTH {
            return None;
        }
        let ts = normalize(self.ix, e);
        if let Some(v) = const_eval(self.ix, &ts, self.env, 0) {
            return Some(v);
        }
        if let Some((l, op, r)) = split_last_top(self.ix, &ts, &["+", "-"]) {
            match op {
                "+" => {
                    if let (Some(a), Some(b)) =
                        (self.upper_const(&l, pos, depth), self.upper_const(&r, pos, depth))
                    {
                        return Some(a + b);
                    }
                }
                "-" => return self.upper_const(&l, pos, depth),
                _ => {}
            }
        }
        if let Some((l, op, r)) = split_last_top(self.ix, &ts, &["*", "/", "%"]) {
            let rc = const_eval(self.ix, &r, self.env, 0);
            match op {
                "*" => {
                    if let (Some(a), Some(b)) = (self.upper_const(&l, pos, depth), rc) {
                        if b >= 0 {
                            return Some(a * b);
                        }
                    }
                }
                "/" => {
                    if let (Some(a), Some(b)) = (self.upper_const(&l, pos, depth), rc) {
                        if b >= 1 {
                            return Some(a / b);
                        }
                    }
                }
                "%" => {
                    let from_mod = rc.filter(|&b| b >= 1).map(|b| b - 1);
                    let from_lhs = self.upper_const(&l, pos, depth);
                    return match (from_mod, from_lhs) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
                _ => {}
            }
        }
        if let Some((recv, name, args)) = method_tail(self.ix, &ts) {
            if name == "min" && args.len() == 1 {
                let a = self.upper_const(&recv, pos, depth);
                let b = self.upper_const(&args[0], pos, depth);
                return match (a, b) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        if let Some(name) = single_ident(self.ix, &ts) {
            let mut best: Option<i64> = None;
            let mut push = |v: i64| best = Some(best.map_or(v, |b: i64| b.min(v)));
            for u in self.uppers_of(&name, pos) {
                let bound = match &u.bound {
                    BoundExpr::Const(v) => Some(*v),
                    BoundExpr::Toks(b) => self.upper_const(b, pos, depth + 1),
                    BoundExpr::LenOf(_) | BoundExpr::Sym(_) => None,
                };
                if let Some(v) = bound {
                    push(if u.strict { v - 1 } else { v });
                }
            }
            for eq in self.eqs_of(&name, pos) {
                if let Some(v) = self.upper_const(&eq.init, eq.at, depth + 1) {
                    push(v);
                }
            }
            return best;
        }
        None
    }

    /// Proves `a + k ≤ c.len()` where `k` is a constant: either a length
    /// fact `c.len() == L' + k2` with `k2 ≥ k` and `a ≤ L'`, or the
    /// aligned-slice rule (`a < m`, `m` and `a` both `k`-aligned ⇒
    /// `a + k ≤ m`).
    fn prove_plus_le(&self, a: &[usize], k: i64, c: &str, pos: usize, depth: usize) -> bool {
        let na = norm(self.ix, &normalize(self.ix, a));
        for lf in self.lens_of(c, pos) {
            if let BoundExpr::Toks(lts) = &lf.len {
                let lnorm = normalize(self.ix, lts);
                if let Some((ll, _, lr)) = split_last_top(self.ix, &lnorm, &["+"]) {
                    if const_eval(self.ix, &lr, self.env, 0).is_some_and(|k2| k2 >= k)
                        && self.reach_norm(a, &norm(self.ix, &normalize(self.ix, &ll)), pos, depth)
                    {
                        return true;
                    }
                }
            }
        }
        let _ = na;
        if depth > MAX_PROOF_DEPTH {
            return false;
        }
        if let Some(av) = single_ident(self.ix, a) {
            for u in self.uppers_of(&av, pos) {
                if !u.strict {
                    continue;
                }
                if self.aligned_bound(&u.bound, k, pos, depth + 1)
                    && self.aligned_var(&av, k, pos, u.scope.end)
                {
                    if let BoundExpr::Toks(m) = &u.bound {
                        if self.prove_le(m, c, pos, depth + 1) {
                            return true;
                        }
                    }
                    if let BoundExpr::LenOf(b) = &u.bound {
                        if b == c {
                            return true;
                        }
                    }
                }
            }
            for eq in self.eqs_of(&av, pos) {
                if self.prove_plus_le(&eq.init, k, c, eq.at, depth + 1) {
                    return true;
                }
            }
        }
        // Scaled-index rule: `a = q·K` with `q < M/K` (strict, integer
        // division) gives `q·K ≤ M − K`, so `a + k ≤ M` whenever `k ≤ K`.
        let ts = normalize(self.ix, a);
        if let Some((l, _, r)) = split_last_top(self.ix, &ts, &["*"]) {
            if let Some(kf) = const_eval(self.ix, &r, self.env, 0) {
                if kf >= k && kf >= 1 {
                    if let Some(q) = single_ident(self.ix, &l) {
                        for u in self.uppers_of(&q, pos) {
                            if !u.strict {
                                continue;
                            }
                            let BoundExpr::Toks(b) = &u.bound else { continue };
                            let bn = normalize(self.ix, b);
                            let Some((ml, _, mr)) = split_last_top(self.ix, &bn, &["/"]) else {
                                continue;
                            };
                            if const_eval(self.ix, &mr, self.env, 0) == Some(kf)
                                && self.prove_le(&ml, c, pos, depth + 1)
                            {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }

    /// Whether `e` provably equals the normalized expression `target`
    /// (directly or through equality hops).
    fn reach_norm(&self, e: &[usize], target: &str, pos: usize, depth: usize) -> bool {
        if depth > MAX_PROOF_DEPTH {
            return false;
        }
        let ts = normalize(self.ix, e);
        if norm(self.ix, &ts) == target {
            return true;
        }
        if let Some(name) = single_ident(self.ix, &ts) {
            for eq in self.eqs_of(&name, pos) {
                if self.reach_norm(&eq.init, target, eq.at, depth + 1) {
                    return true;
                }
            }
        }
        false
    }

    /// Proves `e < c.len()` at `pos`.
    fn prove_lt(&self, e: &[usize], c: &str, pos: usize, depth: usize) -> bool {
        if depth > MAX_PROOF_DEPTH {
            return false;
        }
        let ts = normalize(self.ix, e);
        if ts.is_empty() {
            return false;
        }
        if let Some(v) = const_eval(self.ix, &ts, self.env, 0) {
            if self.len_consts(c, pos).iter().any(|&lc| v < lc) {
                return true;
            }
            if v == 0 && self.nonempty(c, pos) {
                return true;
            }
        }
        if let Some(name) = single_ident(self.ix, &ts) {
            for u in self.uppers_of(&name, pos) {
                match (&u.bound, u.strict) {
                    (BoundExpr::LenOf(b), true) if b == c => return true,
                    (BoundExpr::Toks(b), true) if self.prove_le(b, c, pos, depth + 1) => {
                        return true;
                    }
                    (BoundExpr::Toks(b), false) if self.prove_lt(b, c, pos, depth + 1) => {
                        return true;
                    }
                    (BoundExpr::Const(v), true)
                        if self.len_consts(c, pos).iter().any(|&lc| *v <= lc) =>
                    {
                        return true;
                    }
                    (BoundExpr::Const(v), false)
                        if self.len_consts(c, pos).iter().any(|&lc| *v < lc) =>
                    {
                        return true;
                    }
                    _ => {}
                }
            }
            for eq in self.eqs_of(&name, pos) {
                if self.prove_lt(&eq.init, c, eq.at, depth + 1) {
                    return true;
                }
            }
        }
        if let Some((l, op, r)) = split_last_top(self.ix, &ts, &["+", "-"]) {
            match op {
                "-"
                    // a - b < a ≤ len when b ≥ 1 (usize: executed ⇒ no wrap).
                    if const_eval(self.ix, &r, self.env, 0).is_some_and(|v| v >= 1)
                        && self.prove_le(&l, c, pos, depth + 1)
                    => {
                        return true;
                    }
                "+" => {
                    if let Some(k) = const_eval(self.ix, &r, self.env, 0) {
                        // a < u and len == L' + k2 with u == L', k2 ≥ k+1…
                        // is subsumed by: a + (k+1) ≤ len.
                        if k >= 0 && self.prove_plus_le(&l, k + 1, c, pos, depth + 1) {
                            return true;
                        }
                        // CSR idiom `row_ptr[r + 1]`: r < u, u ≤ L', and
                        // len == L' + k2 with k2 ≥ k ⇒ r + k < len.
                        if k >= 0 && self.prove_upper_slack(&l, k, c, pos, depth) {
                            return true;
                        }
                    }
                    // Interleaved: `i * K + j` handled below.
                }
                _ => {}
            }
        }
        if let Some((_, op, r)) = split_last_top(self.ix, &ts, &["%"]) {
            // a % b < b ≤ len (executed ⇒ b ≠ 0).
            if op == "%" && self.prove_le(&r, c, pos, depth + 1) {
                return true;
            }
        }
        if self.prove_interleaved(&ts, c, pos, depth) {
            return true;
        }
        // Interval fallback: a constant upper bound strictly under a
        // constant length.
        if let Some(ub) = self.upper_const(&ts, pos, depth) {
            if self.len_consts(c, pos).iter().any(|&v| ub < v) {
                return true;
            }
        }
        false
    }

    /// `a + k < c.len()` via a strict upper `a < u` where `u` reaches `L'`
    /// and `c.len() == L' + k2` with `k2 ≥ k` (e.g. `row_ptr[r + 1]` with
    /// `row_ptr.len() == n_rows + 1` and `r < n_rows`).
    fn prove_upper_slack(&self, a: &[usize], k: i64, c: &str, pos: usize, depth: usize) -> bool {
        let Some(av) = single_ident(self.ix, a) else { return false };
        for u in self.uppers_of(&av, pos) {
            if !u.strict {
                continue;
            }
            let u_toks = match &u.bound {
                BoundExpr::Toks(b) => b.clone(),
                _ => continue,
            };
            for lf in self.lens_of(c, pos) {
                if let BoundExpr::Toks(lts) = &lf.len {
                    let lnorm = normalize(self.ix, lts);
                    if let Some((ll, _, lr)) = split_last_top(self.ix, &lnorm, &["+"]) {
                        if const_eval(self.ix, &lr, self.env, 0).is_some_and(|k2| k2 >= k)
                            && self.reach_norm(
                                &u_toks,
                                &norm(self.ix, &normalize(self.ix, &ll)),
                                pos,
                                depth + 1,
                            )
                        {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Interleaved layout: `i * K` or `i * K + j < c.len()` when `i` is
    /// strictly bounded by an expression reaching `c.len() / K` and
    /// `j < K`.
    fn prove_interleaved(&self, ts: &[usize], c: &str, pos: usize, depth: usize) -> bool {
        if depth > MAX_PROOF_DEPTH {
            return false;
        }
        let (mul_part, j_part) = match split_last_top(self.ix, ts, &["+"]) {
            Some((l, _, r)) => (l, Some(r)),
            None => (ts.to_vec(), None),
        };
        let Some((a_part, op, k_part)) = split_last_top(self.ix, &mul_part, &["*"]) else {
            return false;
        };
        if op != "*" {
            return false;
        }
        let Some(a) = single_ident(self.ix, &a_part) else { return false };
        let k_toks = normalize(self.ix, &k_part);
        let k_norm = norm(self.ix, &k_toks);
        let k_const = const_eval(self.ix, &k_toks, self.env, 0);
        // `i` must be < something reaching `c.len() / K`.
        let mut i_ok = false;
        for u in self.uppers_of(&a, pos) {
            if !u.strict {
                continue;
            }
            if let BoundExpr::Toks(b) = &u.bound {
                if self.is_div_len(b, c, &k_norm, k_const, pos, depth + 1) {
                    i_ok = true;
                    break;
                }
            }
        }
        if !i_ok {
            return false;
        }
        match j_part {
            None => true,
            Some(j) => {
                if let Some(jv) = const_eval(self.ix, &j, self.env, 0) {
                    return k_const.is_some_and(|kv| 0 <= jv && jv < kv);
                }
                if let Some(jn) = single_ident(self.ix, &j) {
                    for u in self.uppers_of(&jn, pos) {
                        if !u.strict {
                            continue;
                        }
                        if let BoundExpr::Toks(b) = &u.bound {
                            let bn = normalize(self.ix, b);
                            if norm(self.ix, &bn) == k_norm {
                                return true;
                            }
                            if let (Some(bv), Some(kv)) =
                                (const_eval(self.ix, &bn, self.env, 0), k_const)
                            {
                                if bv <= kv {
                                    return true;
                                }
                            }
                        }
                    }
                }
                false
            }
        }
    }

    /// Whether `ts` is (or reaches) an expression of the form
    /// `c.len() / K` — possibly inside a `.min(…)` chain.
    fn is_div_len(
        &self,
        ts: &[usize],
        c: &str,
        k_norm: &str,
        k_const: Option<i64>,
        pos: usize,
        depth: usize,
    ) -> bool {
        if depth > MAX_PROOF_DEPTH {
            return false;
        }
        let ts = normalize(self.ix, ts);
        if let Some((l, op, r)) = split_last_top(self.ix, &ts, &["/"]) {
            if op == "/" {
                let rn = normalize(self.ix, &r);
                let k_ok = norm(self.ix, &rn) == k_norm
                    || (const_eval(self.ix, &rn, self.env, 0).is_some()
                        && const_eval(self.ix, &rn, self.env, 0) == k_const);
                // `X / K` with any `X ≤ c.len()`: `i < X/K` still keeps
                // `i·K + (K−1) ≤ X − 1 < c.len()`.
                if k_ok && self.prove_le(&l, c, pos, depth) {
                    return true;
                }
                return false;
            }
        }
        if let Some((recv, name, args)) = method_tail(self.ix, &ts) {
            if name == "min" && args.len() == 1 {
                return self.is_div_len(&recv, c, k_norm, k_const, pos, depth + 1)
                    || self.is_div_len(&args[0], c, k_norm, k_const, pos, depth + 1);
            }
        }
        if let Some(name) = single_ident(self.ix, &ts) {
            for eq in self.eqs_of(&name, pos) {
                if self.is_div_len(&eq.init, c, k_norm, k_const, eq.at, depth + 1) {
                    return true;
                }
            }
        }
        false
    }
}

// ---------------------------------------------------------------------
// Indexed-access sites
// ---------------------------------------------------------------------

#[derive(Debug)]
enum SiteKind {
    Index(Vec<usize>),
    RangeIdx { lo: Vec<usize>, hi: Vec<usize>, inclusive: bool },
    Unchecked(Vec<usize>),
}

#[derive(Debug)]
struct Site {
    /// Token the diagnostic anchors to (the `[` or the method name).
    at: usize,
    /// Canonical container text (`"row_ptr"`, `"self.data"`).
    container: String,
    /// Last identifier of the container chain, for `BOUNDS(name)` hints.
    last_name: String,
    kind: SiteKind,
}

/// Backward delimiter match: the opener of the close token at `close`.
fn rev_match_delim(ix: &FileIndex, close: usize) -> Option<usize> {
    let (o, c) = match ix.toks[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        "}" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        let t = &ix.toks[j];
        if t.is_punct(c) {
            depth += 1;
        } else if t.is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "return", "in", "let", "mut", "ref", "move", "as", "break", "continue",
    "loop", "while", "for", "where", "impl", "fn", "pub", "use", "const", "static", "struct",
    "enum", "unsafe", "dyn", "type", "trait", "mod", "crate", "super", "box", "await",
];

/// Start of the postfix chain ending at code token `p` (e.g. for
/// `self.data[..]`, `p` is `data` and the chain starts at `self`).
fn chain_start(ix: &FileIndex, mut s: usize) -> usize {
    loop {
        let t = &ix.toks[s];
        if t.is_punct(")") || t.is_punct("]") {
            match rev_match_delim(ix, s) {
                Some(o) => s = o,
                None => return s,
            }
            // A call/index: keep walking from the name before the opener.
            match prev_code(&ix.toks, s) {
                Some(q)
                    if ix.toks[q].kind == TokKind::Ident
                        && !KEYWORDS.contains(&ix.toks[q].text.as_str()) =>
                {
                    s = q;
                }
                _ => return s,
            }
            continue;
        }
        if matches!(t.kind, TokKind::Ident | TokKind::NumLit) {
            match prev_code(&ix.toks, s) {
                Some(q) if ix.toks[q].is_punct(".") || ix.toks[q].is_punct("::") => {
                    match prev_code(&ix.toks, q) {
                        Some(r) => {
                            s = r;
                            continue;
                        }
                        None => return s,
                    }
                }
                _ => return s,
            }
        }
        return s;
    }
}

/// Canonical container text + last identifier for the chain `s..=p`.
fn container_of(ix: &FileIndex, s: usize, p: usize) -> (String, String) {
    let ts: Vec<usize> = (s..=p).filter(|&i| ix.is_live(i)).collect();
    let container = norm(ix, &ts);
    // Last *top-level* ident — for a method-call container
    // (`self.row_values(r)`) that is the method name, not its argument.
    let mut depth = 0i32;
    let mut last_name = None;
    for &i in &ts {
        if is_open(ix, i) {
            depth += 1;
        } else if is_close(ix, i) {
            depth -= 1;
        } else if depth == 0 && ix.toks[i].kind == TokKind::Ident {
            last_name = Some(ix.toks[i].text.clone());
        }
    }
    (container.clone(), last_name.unwrap_or(container))
}

/// All indexed accesses, range slicings, and `get_unchecked*` calls in a
/// function body.
fn index_sites(ix: &FileIndex, f: &FnItem) -> Vec<Site> {
    let mut out = Vec::new();
    for i in f.body.clone() {
        if !ix.is_live(i) {
            continue;
        }
        // `container[…]`
        if ix.toks[i].is_punct("[") {
            let Some(p) = prev_code(&ix.toks, i) else { continue };
            if p < f.body.start {
                continue;
            }
            let indexable = (ix.toks[p].kind == TokKind::Ident
                && !KEYWORDS.contains(&ix.toks[p].text.as_str()))
                || ix.toks[p].is_punct(")")
                || ix.toks[p].is_punct("]")
                || ix.toks[p].is_punct("?");
            if !indexable {
                continue;
            }
            let Some(close) = match_delim(&ix.toks, i) else { continue };
            let content = expr_toks(ix, &(i + 1..close));
            if content.is_empty() {
                continue;
            }
            let s = chain_start(ix, p);
            let (container, last_name) = container_of(ix, s, p);
            let kind = match split_last_range(ix, &content) {
                Some((lo, hi, inclusive)) => SiteKind::RangeIdx { lo, hi, inclusive },
                None => SiteKind::Index(content),
            };
            out.push(Site { at: i, container, last_name, kind });
        }
        // `container.get_unchecked(…)` / `get_unchecked_mut`
        if ix.toks[i].kind == TokKind::Ident
            && (ix.toks[i].text == "get_unchecked" || ix.toks[i].text == "get_unchecked_mut")
        {
            let Some(dot) = prev_code(&ix.toks, i) else { continue };
            if !ix.toks[dot].is_punct(".") {
                continue;
            }
            let Some(args) = crate::workspace::call_args(ix, i) else { continue };
            let Some(arg0) = args.first() else { continue };
            let Some(recv_end) = prev_code(&ix.toks, dot) else { continue };
            let s = chain_start(ix, recv_end);
            let (container, last_name) = container_of(ix, s, recv_end);
            out.push(Site {
                at: i,
                container,
                last_name,
                kind: SiteKind::Unchecked(expr_toks(ix, arg0)),
            });
        }
    }
    out
}

/// Top-level `..` / `..=` split of an index expression.
fn split_last_range(ix: &FileIndex, ts: &[usize]) -> Option<(Vec<usize>, Vec<usize>, bool)> {
    let mut depth = 0i32;
    for (p, &t) in ts.iter().enumerate() {
        if is_open(ix, t) {
            depth += 1;
        } else if is_close(ix, t) {
            depth -= 1;
        } else if depth == 0
            && ix.toks[t].kind == TokKind::Punct
            && (ix.toks[t].text == ".." || ix.toks[t].text == "..=")
        {
            return Some((ts[..p].to_vec(), ts[p + 1..].to_vec(), ix.toks[t].text == "..="));
        }
    }
    None
}

// ---------------------------------------------------------------------
// `// BOUNDS(var): reason` escapes
// ---------------------------------------------------------------------

/// Minimum substantive length of an escape reason (after the colon).
const MIN_BOUNDS_REASON: usize = 10;

/// Escapes declared inside a function body: `(name, reason_is_substantive,
/// comment token)`.
fn bounds_escapes(ix: &FileIndex, body: &Range<usize>) -> Vec<(String, bool, usize)> {
    let mut out = Vec::new();
    for i in body.clone() {
        if ix.test_mask[i]
            || !matches!(ix.toks[i].kind, TokKind::LineComment | TokKind::BlockComment)
        {
            continue;
        }
        let text = ix.toks[i].text.trim_start_matches('/').trim_start_matches('*').trim();
        let Some(rest) = text.strip_prefix("BOUNDS(") else { continue };
        let Some(close) = rest.find(')') else { continue };
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').unwrap_or("").trim();
        // One escape may audit several parallel names: `BOUNDS(a, b): …`.
        for name in rest[..close].split(',') {
            out.push((name.trim().to_string(), reason.len() >= MIN_BOUNDS_REASON, i));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Pass: index-bounds
// ---------------------------------------------------------------------

/// Kernel hot-path files governed by `index-bounds`. Fixture files staged
/// under the kernel crates are governed too, so seeded-violation fixtures
/// and CLI subprocess tests exercise the pass.
const GOVERNED: &[&str] = &[
    "crates/nn/src/matrix.rs",
    "crates/graph/src/csr.rs",
    "crates/par/src/lanes.rs",
    "crates/par/src/partition.rs",
    "crates/par/src/chunks.rs",
    "crates/par/src/fold.rs",
    "crates/quant/src/lib.rs",
];

fn index_bounds_governed(label: &str) -> bool {
    GOVERNED.contains(&label)
        || (label.ends_with("/fixture.rs")
            && ["crates/nn/src/", "crates/graph/src/", "crates/par/src/", "crates/quant/src/"]
                .iter()
                .any(|p| label.starts_with(p)))
}

fn violation(
    label: &str,
    ix: &FileIndex,
    at: usize,
    rule: RuleKind,
    message: String,
    suggestion: String,
) -> Violation {
    Violation {
        file: label.to_string(),
        line: ix.toks[at].line,
        col: ix.toks[at].col,
        rule,
        severity: Severity::Error,
        message,
        suggestion: Some(suggestion),
    }
}

/// Every indexed access in the governed kernel files must be proved in
/// bounds by the abstract domain or carry an audited `BOUNDS` escape.
pub(crate) fn pass_index_bounds(
    files: &[(String, FileIndex)],
    _syms: &SymbolTable,
    _cg: &CallGraph,
    out: &mut Vec<Violation>,
) {
    let env = const_env(files);
    let sums = method_summaries(files);
    for (label, ix) in files {
        if !index_bounds_governed(label) {
            continue;
        }
        for f in ix.fn_items() {
            if !ix.is_live(f.at) {
                continue;
            }
            let mut facts = collect_facts(ix, &f, &env, &sums);
            let escapes = bounds_escapes(ix, &f.body);
            let sites = index_sites(ix, &f);
            // Sites that index straight into a summarized method call
            // (`self.row(r)[start..end]`) get their symbolic length here —
            // there is no binding for collect_init_facts to hang it on.
            let mut seen = std::collections::BTreeSet::new();
            for s in &sites {
                if seen.insert(s.container.clone()) {
                    if let Some(sym) = sums.container_sym(&s.container) {
                        facts.lens.push(LenFact {
                            container: s.container.clone(),
                            len: BoundExpr::Sym(sym),
                            scope: f.body.clone(),
                        });
                    }
                }
            }
            let prover =
                Prover { ix, facts: &facts, env: &env, sums: &sums, site: std::cell::Cell::new(0) };
            for site in sites {
                prover.site.set(site.at);
                let proved = match &site.kind {
                    SiteKind::Index(e) | SiteKind::Unchecked(e) => {
                        prover.prove_lt(e, &site.container, site.at, 0)
                    }
                    SiteKind::RangeIdx { lo, hi, inclusive } => {
                        let hi_ok = if *inclusive {
                            !hi.is_empty() && prover.prove_lt(hi, &site.container, site.at, 0)
                        } else {
                            prover.prove_le(hi, &site.container, site.at, 0)
                        };
                        hi_ok && prover.prove_le(lo, &site.container, site.at, 0)
                    }
                };
                if proved {
                    continue;
                }
                let escape =
                    escapes.iter().find(|(n, _, _)| *n == site.last_name || *n == site.container);
                let what = match &site.kind {
                    SiteKind::Index(e) => {
                        format!("indexed access `{}[{}]`", site.container, norm(ix, e))
                    }
                    SiteKind::RangeIdx { lo, hi, inclusive } => format!(
                        "range slice `{}[{}{}{}]`",
                        site.container,
                        norm(ix, lo),
                        if *inclusive { "..=" } else { ".." },
                        norm(ix, hi)
                    ),
                    SiteKind::Unchecked(e) => {
                        format!("`{}.get_unchecked({})`", site.container, norm(ix, e))
                    }
                };
                match escape {
                    Some((_, true, _)) => {}
                    Some((name, false, _)) => out.push(violation(
                        label,
                        ix,
                        site.at,
                        RuleKind::IndexBounds,
                        format!(
                            "{what} has a `// BOUNDS({name})` escape with a placeholder reason"
                        ),
                        format!(
                            "state the data-structure invariant that keeps `{}` in bounds \
                             (≥ {MIN_BOUNDS_REASON} chars after the colon)",
                            site.last_name
                        ),
                    )),
                    None => out.push(violation(
                        label,
                        ix,
                        site.at,
                        RuleKind::IndexBounds,
                        format!("{what} has no dominating bounds proof"),
                        format!(
                            "guard the index with a comparison or loop bound the dataflow layer \
                             can see, or add `// BOUNDS({}): <invariant>` citing the \
                             data-structure invariant",
                            site.last_name
                        ),
                    )),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pass: shape-consistency
// ---------------------------------------------------------------------

/// One matrix dimension: a folded constant or a normalized symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Dim {
    Const(i64),
    Sym(String),
}

impl Dim {
    fn render(&self) -> String {
        match self {
            Dim::Const(v) => v.to_string(),
            Dim::Sym(s) => s.clone(),
        }
    }

    /// A provable mismatch needs both sides statically known.
    fn conflicts(&self, other: &Dim) -> bool {
        matches!((self, other), (Dim::Const(a), Dim::Const(b)) if a != b)
    }
}

#[derive(Debug, Clone)]
struct Shape {
    rows: Dim,
    cols: Dim,
}

impl Shape {
    fn render(&self) -> String {
        format!("{}×{}", self.rows.render(), self.cols.render())
    }
}

fn dim_of(ix: &FileIndex, ts: &[usize], env: &BTreeMap<String, i64>) -> Dim {
    let ts = normalize(ix, ts);
    match const_eval(ix, &ts, env, 0) {
        Some(v) => Dim::Const(v),
        None => Dim::Sym(norm(ix, &ts)),
    }
}

/// Shape of an initialiser, consulting already-traced bindings. `None`
/// means "unknown — drop the binding from the map".
fn shape_of_init(
    ix: &FileIndex,
    ts: &[usize],
    shapes: &BTreeMap<String, Shape>,
    env: &BTreeMap<String, i64>,
    depth: usize,
) -> Option<Shape> {
    if depth > 4 {
        return None;
    }
    let mut ts = normalize(ix, ts);
    // Strip a trailing `?`.
    if ts.last().is_some_and(|&t| ix.toks[t].is_punct("?")) {
        ts.pop();
    }
    if let Some((names, args)) = call_path(ix, &ts) {
        let ctor = names.len() >= 2;
        if ctor {
            let ty = &names[names.len() - 2];
            let f = &names[names.len() - 1];
            if ty == "DenseMatrix"
                && matches!(
                    f.as_str(),
                    "zeros" | "ones" | "from_fn" | "from_vec" | "xavier_uniform"
                )
                && args.len() >= 2
            {
                return Some(Shape {
                    rows: dim_of(ix, &args[0], env),
                    cols: dim_of(ix, &args[1], env),
                });
            }
            if ty == "CsrMatrix"
                && matches!(f.as_str(), "zeros" | "from_coo" | "identity")
                && args.len() >= 2
            {
                return Some(Shape {
                    rows: dim_of(ix, &args[0], env),
                    cols: dim_of(ix, &args[1], env),
                });
            }
            if ty == "QMatrix" && f == "quantize" && !args.is_empty() {
                let src = single_ident(ix, &args[0])?;
                return shapes.get(&src).cloned();
            }
        }
        return None;
    }
    if let Some((recv, name, args)) = method_tail(ix, &ts) {
        match (name.as_str(), args.len()) {
            // `.expect("…")` / `.unwrap()` / `.clone()` pass the shape through.
            ("expect", 1) | ("unwrap", 0) | ("clone", 0) | ("dequantize", 0) | ("as_slice", 0) => {
                return shape_of_init(ix, &recv, shapes, env, depth + 1)
            }
            ("transpose", 0) => {
                let s = shape_of_init(ix, &recv, shapes, env, depth + 1)?;
                return Some(Shape { rows: s.cols, cols: s.rows });
            }
            ("matmul", 1) | ("matmul_transb", 1) | ("matmul_transa", 1) => {
                let a = shape_of_init(ix, &recv, shapes, env, depth + 1)?;
                let b = shape_of_init(ix, &args[0], shapes, env, depth + 1)?;
                return Some(match name.as_str() {
                    "matmul" => Shape { rows: a.rows, cols: b.cols },
                    "matmul_transb" => Shape { rows: a.rows, cols: b.rows },
                    _ => Shape { rows: a.cols, cols: b.cols },
                });
            }
            ("hadamard", 1) | ("add", 1) | ("sub", 1) => {
                return shape_of_init(ix, &recv, shapes, env, depth + 1)
            }
            _ => return None,
        }
    }
    if let Some(name) = single_ident(ix, &ts) {
        return shapes.get(&name).cloned();
    }
    None
}

/// Binary-op call sites whose operand shapes must agree.
const SHAPE_SINKS: &[&str] =
    &["matmul", "matmul_transb", "matmul_transa", "hadamard", "add", "sub", "spmm"];

/// Dimension checks traced through ctors and `let` bindings: a
/// statically-known inner-dim mismatch is an error before the tape
/// verifier would ever see it.
pub(crate) fn pass_shape_consistency(
    files: &[(String, FileIndex)],
    _syms: &SymbolTable,
    _cg: &CallGraph,
    out: &mut Vec<Violation>,
) {
    let env = const_env(files);
    for (label, ix) in files {
        if label.starts_with("crates/compat/") {
            continue;
        }
        for f in ix.fn_items() {
            if !ix.is_live(f.at) {
                continue;
            }
            check_fn_shapes(label, ix, &f, &env, out);
        }
    }
}

fn check_fn_shapes(
    label: &str,
    ix: &FileIndex,
    f: &FnItem,
    env: &BTreeMap<String, i64>,
    out: &mut Vec<Violation>,
) {
    let binds = binding_inits(ix, &f.body);
    let mut shapes: BTreeMap<String, Shape> = BTreeMap::new();
    // Events in source order: bindings update the map, sinks check it.
    let mut bind_iter = binds.iter().peekable();
    for i in f.body.clone() {
        while bind_iter.peek().is_some_and(|(_, init)| init.start <= i) {
            if let Some((name, init)) = bind_iter.next() {
                let init_ts = expr_toks(ix, init);
                match shape_of_init(ix, &init_ts, &shapes, env, 0) {
                    Some(s) => {
                        shapes.insert(name.clone(), s);
                    }
                    None => {
                        shapes.remove(name);
                    }
                }
            }
        }
        if !ix.is_live(i) || ix.toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = ix.toks[i].text.as_str();
        // Free-fn fused GEMM: `matmul_deq(&a, &qb, …)`.
        if name == "matmul_deq" && !prev_code(&ix.toks, i).is_some_and(|j| ix.toks[j].is_punct("."))
        {
            if let Some(args) = crate::workspace::call_args(ix, i) {
                if args.len() >= 2 {
                    let a = arg_shape(ix, &args[0], &shapes, env);
                    let b = arg_shape(ix, &args[1], &shapes, env);
                    if let (Some((an, a)), Some((bn, b))) = (a, b) {
                        if a.cols.conflicts(&b.rows) {
                            out.push(shape_violation(
                                label,
                                ix,
                                i,
                                "matmul_deq",
                                &an,
                                &a,
                                &bn,
                                &b,
                                "a.cols == b.rows",
                            ));
                        }
                    }
                }
            }
            continue;
        }
        if !SHAPE_SINKS.contains(&name) {
            continue;
        }
        let Some(dot) = prev_code(&ix.toks, i) else { continue };
        if !ix.toks[dot].is_punct(".") {
            continue;
        }
        let Some(recv_i) = prev_code(&ix.toks, dot) else { continue };
        if ix.toks[recv_i].kind != TokKind::Ident {
            continue;
        }
        let recv_name = ix.toks[recv_i].text.clone();
        let Some(recv_shape) = shapes.get(&recv_name).cloned() else { continue };
        let Some(args) = crate::workspace::call_args(ix, i) else { continue };
        let Some(arg0) = args.first() else { continue };
        let Some((arg_name, arg_shape)) = arg_shape(ix, arg0, &shapes, env) else { continue };
        let (lhs, rhs, law) = match name {
            "matmul" | "spmm" => {
                (recv_shape.cols.clone(), arg_shape.rows.clone(), "a.cols == b.rows")
            }
            "matmul_transb" => {
                (recv_shape.cols.clone(), arg_shape.cols.clone(), "a.cols == b.cols")
            }
            "matmul_transa" => {
                (recv_shape.rows.clone(), arg_shape.rows.clone(), "a.rows == b.rows")
            }
            _ => (recv_shape.rows.clone(), arg_shape.rows.clone(), "same shape"),
        };
        if lhs.conflicts(&rhs) {
            out.push(shape_violation(
                label,
                ix,
                i,
                name,
                &recv_name,
                &recv_shape,
                &arg_name,
                &arg_shape,
                law,
            ));
            continue;
        }
        // Elementwise ops additionally need matching cols.
        if matches!(name, "hadamard" | "add" | "sub") && recv_shape.cols.conflicts(&arg_shape.cols)
        {
            out.push(shape_violation(
                label,
                ix,
                i,
                name,
                &recv_name,
                &recv_shape,
                &arg_name,
                &arg_shape,
                law,
            ));
        }
    }
}

/// Shape of a call argument: `&x`, `x`, or `x.as_slice()` for a traced `x`.
fn arg_shape(
    ix: &FileIndex,
    arg: &Range<usize>,
    shapes: &BTreeMap<String, Shape>,
    env: &BTreeMap<String, i64>,
) -> Option<(String, Shape)> {
    let ts = expr_toks(ix, arg);
    let name = single_ident(ix, &ts).or_else(|| {
        method_tail(ix, &ts).and_then(|(recv, n, a)| {
            if n == "as_slice" && a.is_empty() {
                single_ident(ix, &recv)
            } else {
                None
            }
        })
    })?;
    let s = shape_of_init(ix, &ts, shapes, env, 0)?;
    Some((name, s))
}

#[allow(clippy::too_many_arguments)]
fn shape_violation(
    label: &str,
    ix: &FileIndex,
    at: usize,
    op: &str,
    an: &str,
    a: &Shape,
    bn: &str,
    b: &Shape,
    law: &str,
) -> Violation {
    violation(
        label,
        ix,
        at,
        RuleKind::ShapeConsistency,
        format!(
            "`{op}` dimension mismatch: `{an}` is {} but `{bn}` is {} (needs {law})",
            a.render(),
            b.render()
        ),
        "fix the construction site or the call — at runtime the tape verifier would reject \
         this with VerifierRejected"
            .to_string(),
    )
}

// ---------------------------------------------------------------------
// Pass: exit-code-registry
// ---------------------------------------------------------------------

/// The workspace exit-code registry, mirroring README.md's table: code,
/// meaning, and the crates allowed to produce it (empty = any crate).
/// Codes 0–8 are the train-side table; 9–12 belong to `amud-serve`.
pub const EXIT_REGISTRY: &[(i64, &str, &[&str])] = &[
    (0, "success", &[]),
    (1, "I/O error", &[]),
    (2, "usage error", &[]),
    (3, "bad input", &["train", "datasets", "amud-repro"]),
    (4, "dataset parse error", &["train", "datasets", "amud-repro"]),
    (5, "verifier rejected", &["train", "amud-repro"]),
    (6, "non-finite loss / divergence", &["train", "bench", "amud-repro"]),
    (7, "gradient explosion", &["train", "amud-repro"]),
    (8, "timeout", &["train", "amud-repro"]),
    (9, "snapshot error", &["serve", "amud-repro"]),
    (10, "deadline miss", &["serve", "amud-repro"]),
    (11, "overload shed", &["serve", "amud-repro"]),
    (12, "bad request", &["serve", "amud-repro"]),
];

/// amud-lint's own exit codes live in a separate, smaller domain.
const LINT_EXIT_MAX: i64 = 4;

/// One claimed exit-code value with its source location.
struct Claim {
    file_idx: usize,
    at: usize,
    value: i64,
}

/// Collects every `process::exit(n)`, `exit_code()` return value, and
/// `EXIT_*` constant workspace-wide and checks them against the registry —
/// including constants flowing through exit-sink helpers (`die(msg, 1)`).
pub(crate) fn pass_exit_code_registry(
    files: &[(String, FileIndex)],
    _syms: &SymbolTable,
    _cg: &CallGraph,
    out: &mut Vec<Violation>,
) {
    let env = const_env(files);
    let mut claims: Vec<Claim> = Vec::new();
    let mut lint_consts: Vec<Claim> = Vec::new();
    // Exit sinks: fn name → index of the parameter that reaches
    // `process::exit`.
    let mut sinks: Vec<(String, usize)> = Vec::new();

    for (fi, (label, ix)) in files.iter().enumerate() {
        if label.starts_with("crates/compat/") {
            continue;
        }
        let lintish = label.starts_with("crates/lint/");
        for (name, init) in const_decls(ix) {
            if !name.starts_with("EXIT_") {
                continue;
            }
            if let Some(v) = const_eval(ix, &init, &env, 0) {
                let at = init.first().copied().unwrap_or(0);
                if lintish {
                    lint_consts.push(Claim { file_idx: fi, at, value: v });
                } else {
                    claims.push(Claim { file_idx: fi, at, value: v });
                }
            }
        }
        if lintish {
            continue; // lint's own exit sites use the lint domain above
        }
        for f in ix.fn_items() {
            if !ix.is_live(f.at) {
                continue;
            }
            let exit_code_fn = f.name == "exit_code";
            for i in f.body.clone() {
                if !ix.is_live(i) {
                    continue;
                }
                if exit_code_fn && ix.toks[i].kind == TokKind::NumLit {
                    if let Some(v) = int_lit(&ix.toks[i].text) {
                        claims.push(Claim { file_idx: fi, at: i, value: v });
                    }
                    continue;
                }
                if !ix.toks[i].is_ident("exit") {
                    continue;
                }
                let qualified = prev_code(&ix.toks, i)
                    .filter(|&j| ix.toks[j].is_punct("::"))
                    .and_then(|j| prev_code(&ix.toks, j))
                    .is_some_and(|j| ix.toks[j].is_ident("process"));
                if !qualified {
                    continue;
                }
                let Some(args) = crate::workspace::call_args(ix, i) else { continue };
                let Some(arg0) = args.first() else { continue };
                let ts = expr_toks(ix, arg0);
                if let Some(v) = const_eval(ix, &ts, &env, 0) {
                    claims.push(Claim { file_idx: fi, at: i, value: v });
                } else if let Some(p) = single_ident(ix, &ts) {
                    if let Some(idx) = f.params.iter().position(|q| *q == p) {
                        sinks.push((f.name.clone(), idx));
                    }
                }
            }
        }
    }

    // Constants flowing through exit sinks: `die(msg, 1)` claims 1.
    for (fi, (label, ix)) in files.iter().enumerate() {
        if label.starts_with("crates/compat/") || label.starts_with("crates/lint/") {
            continue;
        }
        for i in 0..ix.toks.len() {
            if !ix.is_live(i) || ix.toks[i].kind != TokKind::Ident {
                continue;
            }
            let Some((_, pidx)) = sinks.iter().find(|(n, _)| *n == ix.toks[i].text).cloned() else {
                continue;
            };
            if prev_code(&ix.toks, i)
                .is_some_and(|j| ix.toks[j].is_ident("fn") || ix.toks[j].is_punct("."))
            {
                continue;
            }
            let Some(args) = crate::workspace::call_args(ix, i) else { continue };
            let Some(arg) = args.get(pidx) else { continue };
            if let Some(v) = const_eval(ix, &expr_toks(ix, arg), &env, 0) {
                claims.push(Claim { file_idx: fi, at: i, value: v });
            }
        }
    }

    for c in &claims {
        let (label, ix) = &files[c.file_idx];
        match EXIT_REGISTRY.iter().find(|(v, _, _)| *v == c.value) {
            None => out.push(violation(
                label,
                ix,
                c.at,
                RuleKind::ExitCodeRegistry,
                format!("undocumented exit code {} — not in the README exit-code table", c.value),
                "add a row to README.md's exit-code table and to EXIT_REGISTRY in \
                 crates/lint/src/dataflow.rs, or reuse a documented code"
                    .to_string(),
            )),
            Some((v, meaning, owners)) => {
                let krate = crate_of(label);
                if !owners.is_empty() && !owners.contains(&krate) {
                    out.push(violation(
                        label,
                        ix,
                        c.at,
                        RuleKind::ExitCodeRegistry,
                        format!(
                            "exit code {v} ({meaning}) used from crate `{krate}`, which does \
                             not own it"
                        ),
                        "codes 0–8 belong to the train-side table and 9–12 to the serve \
                         table — exit with a code from this crate's own range"
                            .to_string(),
                    ));
                }
            }
        }
    }

    // amud-lint's own domain: EXIT_* consts must be 0–4 and pairwise
    // distinct (duplicates would alias CI outcomes).
    let mut seen: Vec<i64> = Vec::new();
    for c in &lint_consts {
        let (label, ix) = &files[c.file_idx];
        if !(0..=LINT_EXIT_MAX).contains(&c.value) {
            out.push(violation(
                label,
                ix,
                c.at,
                RuleKind::ExitCodeRegistry,
                format!("lint exit code {} outside amud-lint's 0–{LINT_EXIT_MAX} domain", c.value),
                "amud-lint's exit codes are clean/violation/usage/regression/internal (0–4)"
                    .to_string(),
            ));
        } else if seen.contains(&c.value) {
            out.push(violation(
                label,
                ix,
                c.at,
                RuleKind::ExitCodeRegistry,
                format!("duplicate lint exit code {}", c.value),
                "every amud-lint outcome needs a distinct exit code".to_string(),
            ));
        }
        seen.push(c.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::index::FileIndex;
    use crate::symbols::SymbolTable;
    use crate::tokenizer::tokenize;

    /// Runs one workspace pass over a one-file workspace.
    fn run_pass(
        label: &str,
        src: &str,
        pass: fn(&[(String, FileIndex)], &SymbolTable, &CallGraph, &mut Vec<Violation>),
    ) -> Vec<Violation> {
        let files = vec![(label.to_string(), FileIndex::new(tokenize(src)))];
        let syms = SymbolTable::build(&files);
        let cg = CallGraph::build(&files, &syms);
        let mut out = Vec::new();
        pass(&files, &syms, &cg, &mut out);
        out
    }

    fn bounds(src: &str) -> Vec<Violation> {
        run_pass("crates/par/src/fixture.rs", src, pass_index_bounds)
    }

    fn shapes(src: &str) -> Vec<Violation> {
        run_pass("crates/train/src/shapes.rs", src, pass_shape_consistency)
    }

    fn exits(label: &str, src: &str) -> Vec<Violation> {
        run_pass(label, src, pass_exit_code_registry)
    }

    // ------------------------------------------------------------------
    // Constant environment
    // ------------------------------------------------------------------

    #[test]
    fn const_env_folds_workspace_constants() {
        let src = "pub const A: usize = 8;\npub const B: usize = A * 4 - 2;\n";
        let env = const_env(&[("x".to_string(), FileIndex::new(tokenize(src)))]);
        assert_eq!(env.get("A"), Some(&8));
        assert_eq!(env.get("B"), Some(&30));
    }

    // ------------------------------------------------------------------
    // index-bounds: the abstract domain
    // ------------------------------------------------------------------

    #[test]
    fn loop_bound_over_len_is_proved() {
        let src = "pub fn f(a: &[f32]) -> f32 {\n\
                   let mut s = 0.0;\n\
                   for i in 0..a.len() {\n s += a[i];\n }\n s\n }\n";
        assert!(bounds(src).is_empty());
    }

    #[test]
    fn symbolic_len_alias_is_proved() {
        let src = "pub fn f(a: &[f32]) -> f32 {\n\
                   let n = a.len();\n let m = n;\n let mut s = 0.0;\n\
                   for i in 0..m {\n s += a[i];\n }\n s\n }\n";
        assert!(bounds(src).is_empty());
    }

    #[test]
    fn unproved_access_is_flagged() {
        let src = "pub fn f(a: &[f32], i: usize) -> f32 {\n a[i]\n }\n";
        let vs = bounds(src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule.name(), "index-bounds");
    }

    #[test]
    fn shadow_rebind_kills_the_length_fact() {
        let src = "pub fn f(a: &[f32]) -> f32 {\n\
                   let n = a.len();\n let n = n + 1;\n let mut s = 0.0;\n\
                   for i in 0..n {\n s += a[i];\n }\n s\n }\n";
        assert_eq!(bounds(src).len(), 1);
    }

    #[test]
    fn tuple_let_binds_both_lengths() {
        let src = "pub fn f(a: &[f32], b: &[f32]) -> f32 {\n\
                   let (n, m) = (a.len(), b.len());\n let mut s = 0.0;\n\
                   for i in 0..n {\n s += a[i];\n }\n\
                   for j in 0..m {\n s += b[j];\n }\n s\n }\n";
        assert!(bounds(src).is_empty());
    }

    #[test]
    fn min_chain_proves_every_operand() {
        let src = "pub fn f(o: &mut [f32], a: &[f32], b: &[f32], c: &[f32], d: &[f32]) {\n\
                   let n = o.len().min(a.len()).min(b.len()).min(c.len()).min(d.len());\n\
                   for i in 0..n {\n o[i] = a[i] + b[i] + c[i] + d[i];\n }\n }\n";
        assert!(bounds(src).is_empty());
    }

    #[test]
    fn scaled_index_and_slice_window_are_proved() {
        // The lane-blocked kernel shape: i < n/4 proves the 4-wide window
        // i*4..i*4+4, and the window binding carries a length-4 fact.
        let src = "pub fn f(a: &[f32]) -> f32 {\n\
                   let n = a.len() - a.len() % 4;\n let mut s = 0.0;\n\
                   for i in 0..n / 4 {\n\
                   let w = &a[i * 4..i * 4 + 4];\n\
                   s += w[0] + w[3];\n }\n s\n }\n";
        assert!(bounds(src).is_empty());
    }

    #[test]
    fn chunks_exact_width_is_a_length_fact() {
        let src = "pub fn f(a: &[f32]) -> f32 {\n\
                   let mut s = 0.0;\n\
                   for ch in a.chunks_exact(4) {\n s += ch[0] + ch[3];\n }\n s\n }\n";
        assert!(bounds(src).is_empty());
    }

    #[test]
    fn windows_closure_binding_is_proved() {
        let src = "pub fn sorted(p: &[usize]) -> bool {\n\
                   p.windows(2).all(|w| w[0] <= w[1])\n }\n";
        assert!(bounds(src).is_empty());
    }

    #[test]
    fn interprocedural_getter_and_row_summary() {
        // The quantized-GEMM shape: `m.cols()` canonicalises to `m.cols`,
        // and the `row` summary gives `r` a symbolic length of `m.cols`.
        let src = "pub struct M { data: Vec<f32>, cols: usize }\n\
                   impl M {\n\
                   pub fn cols(&self) -> usize {\n self.cols\n }\n\
                   pub fn row(&self, r: usize) -> &[f32] {\n\
                   // BOUNDS(data): row-major invariant, callers pass r < rows\n\
                   &self.data[r * self.cols..(r + 1) * self.cols]\n }\n }\n\
                   pub fn dot4(m: &M, r: usize) -> f32 {\n\
                   let a_row = m.row(r);\n\
                   let k_extent = m.cols();\n\
                   let k_main = k_extent - k_extent % 4;\n\
                   let mut s = 0.0;\n\
                   for kb in 0..k_main / 4 {\n\
                   let k = kb * 4;\n\
                   s += a_row[k] + a_row[k + 1] + a_row[k + 2] + a_row[k + 3];\n\
                   }\n s\n }\n";
        assert!(bounds(src).is_empty());
    }

    // ------------------------------------------------------------------
    // index-bounds: the BOUNDS escape grammar
    // ------------------------------------------------------------------

    #[test]
    fn audited_escape_suppresses_the_finding() {
        let src = "pub fn f(a: &[f32], i: usize) -> f32 {\n\
                   // BOUNDS(a): callers uphold i < a.len() by construction\n\
                   a[i]\n }\n";
        assert!(bounds(src).is_empty());
    }

    #[test]
    fn placeholder_escape_reason_is_rejected() {
        let src = "pub fn f(a: &[f32], i: usize) -> f32 {\n\
                   // BOUNDS(a): todo\n\
                   a[i]\n }\n";
        assert_eq!(bounds(src).len(), 1);
    }

    #[test]
    fn comma_list_escape_covers_multiple_containers() {
        let src = "pub fn f(a: &[f32], b: &[f32], i: usize) -> f32 {\n\
                   // BOUNDS(a, b): parallel arrays, callers pass i below both\n\
                   a[i] + b[i]\n }\n";
        assert!(bounds(src).is_empty());
    }

    #[test]
    fn escape_in_one_fn_does_not_leak_to_another() {
        let src = "pub fn f(a: &[f32], i: usize) -> f32 {\n\
                   // BOUNDS(a): callers uphold i < a.len() by construction\n\
                   a[i]\n }\n\
                   pub fn g(a: &[f32], i: usize) -> f32 {\n a[i]\n }\n";
        assert_eq!(bounds(src).len(), 1);
    }

    // ------------------------------------------------------------------
    // shape-consistency
    // ------------------------------------------------------------------

    #[test]
    fn matmul_dimension_mismatch_is_flagged() {
        let src = "pub fn f() {\n\
                   let a = DenseMatrix::zeros(2, 3);\n\
                   let b = DenseMatrix::zeros(4, 5);\n\
                   let _c = a.matmul(&b);\n }\n";
        let vs = shapes(src);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("dimension mismatch"), "{}", vs[0].message);
    }

    #[test]
    fn matching_matmul_is_clean() {
        let src = "pub fn f() {\n\
                   let a = DenseMatrix::zeros(2, 3);\n\
                   let b = DenseMatrix::zeros(3, 5);\n\
                   let _c = a.matmul(&b);\n }\n";
        assert!(shapes(src).is_empty());
    }

    #[test]
    fn const_dims_flow_into_shapes() {
        let src = "pub const N: usize = 4;\n\
                   pub fn f() {\n\
                   let s = CsrMatrix::zeros(3, N);\n\
                   let d = DenseMatrix::zeros(3, 2);\n\
                   let _y = s.spmm(d.as_slice(), 2);\n }\n";
        let vs = shapes(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("spmm"));
    }

    #[test]
    fn quantized_weights_keep_their_source_shape() {
        let src = "pub fn f() {\n\
                   let a = DenseMatrix::zeros(2, 3);\n\
                   let w = DenseMatrix::zeros(5, 4);\n\
                   let qw = QMatrix::quantize(w, Mode::F16);\n\
                   let _y = matmul_deq(&a, &qw);\n }\n";
        let vs = shapes(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("matmul_deq"));
    }

    // ------------------------------------------------------------------
    // exit-code-registry
    // ------------------------------------------------------------------

    #[test]
    fn undocumented_exit_code_is_flagged() {
        let src = "fn main() {\n std::process::exit(42);\n }\n";
        let vs = exits("crates/train/src/main.rs", src);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("undocumented exit code 42"), "{}", vs[0].message);
    }

    #[test]
    fn serve_code_from_train_crate_is_flagged() {
        let src = "fn main() {\n std::process::exit(9);\n }\n";
        let vs = exits("crates/train/src/main.rs", src);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("does not own it"), "{}", vs[0].message);
    }

    #[test]
    fn documented_code_in_owner_crate_is_clean() {
        let src = "fn main() {\n std::process::exit(3);\n }\n";
        assert!(exits("crates/train/src/main.rs", src).is_empty());
    }

    #[test]
    fn constant_through_exit_sink_is_checked() {
        let src = "fn die(msg: &str, code: i32) -> ! {\n\
                   eprintln!(\"{msg}\");\n std::process::exit(code)\n }\n\
                   fn main() {\n die(\"boom\", 42);\n }\n";
        let vs = exits("crates/train/src/main.rs", src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("undocumented exit code 42"), "{}", vs[0].message);
    }

    #[test]
    fn duplicate_lint_exit_codes_are_flagged() {
        let src = "pub const EXIT_A: u8 = 1;\npub const EXIT_B: u8 = 1;\n";
        let vs = exits("crates/lint/src/x.rs", src);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("duplicate lint exit code 1"), "{}", vs[0].message);
    }

    #[test]
    fn lint_exit_code_outside_domain_is_flagged() {
        let src = "pub const EXIT_WILD: u8 = 9;\n";
        let vs = exits("crates/lint/src/x.rs", src);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("outside"), "{}", vs[0].message);
    }
}
