//! The analysis passes of `amud-analyze`.
//!
//! Every pass runs over the shared [`FileIndex`] (token stream + structural
//! facts) and emits [`Violation`]s anchored to `file:line:col`. Rules:
//!
//! * `unwrap-ratchet` — `.unwrap()` / `.expect(…)` in live library code,
//!   budgeted per file by the baseline.
//! * `panic-in-kernel` — `panic!` / `todo!` / `unimplemented!` in the
//!   numeric kernel crates (`unreachable!` with a proof is allowed).
//! * `unsafe-contract` — every `unsafe` block/fn/impl must carry a
//!   structured `// SAFETY:` contract that (a) states the
//!   aliasing/disjointness argument, (b) is substantive (no placeholders),
//!   and (c) names at least one identifier from the code it governs. Raw
//!   pointer derivation (`from_raw_parts*`, `transmute`, …) is confined to
//!   the disjoint-partition runtime in `crates/par`.
//! * `undocumented-public-item` — public items in `amud-core` need docs.
//! * `raw-thread-spawn` — `thread::spawn` / `thread::Builder` outside
//!   `amud-par`.
//! * `concurrency-discipline` — `Mutex` / `RwLock` / `Condvar` / atomic
//!   construction outside `crates/par` and `crates/cache`: all
//!   synchronisation state lives in the two crates whose determinism
//!   contracts are proptested.
//! * `float-determinism` — inside a closure passed to a `par_*` entry
//!   point, iterator `.sum()` / `.fold(…)` and bare-identifier compound
//!   accumulation (`acc += …`) are banned: reductions go through the
//!   ordered-fold helpers in `crates/par` so the bit-identity contract is
//!   auditable in one place. Writes through the task's own block
//!   (`*o += …`, `block[i] += …`) stay allowed.
//! * `cache-key-completeness` — in the cache crates, every parameter of a
//!   function that consults a content-addressed store must flow into the
//!   cache key (traced through `let` bindings) or carry an explicit
//!   `// KEY-EXEMPT(param): reason` justification.
//!
//! The interprocedural rules (`panic-reachability`, `determinism-taint`,
//! `par-disjointness`, `error-taxonomy`) live in [`crate::workspace`]; the
//! value-level abstract-interpretation rules (`index-bounds`,
//! `shape-consistency`, `exit-code-registry`) live in [`crate::dataflow`].

use crate::index::{match_delim, next_code, prev_code, FileIndex, UnsafeKind};
use crate::tokenizer::TokKind;
use std::collections::BTreeSet;
use std::fmt;

/// Which rule a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleKind {
    UnwrapRatchet,
    PanicInKernel,
    UnsafeContract,
    UndocumentedPublicItem,
    RawThreadSpawn,
    ConcurrencyDiscipline,
    FloatDeterminism,
    CacheKeyCompleteness,
    PanicReachability,
    DeterminismTaint,
    ParDisjointness,
    ErrorTaxonomy,
    IndexBounds,
    ShapeConsistency,
    ExitCodeRegistry,
}

impl RuleKind {
    pub fn name(self) -> &'static str {
        match self {
            RuleKind::UnwrapRatchet => "unwrap-ratchet",
            RuleKind::PanicInKernel => "panic-in-kernel",
            RuleKind::UnsafeContract => "unsafe-contract",
            RuleKind::UndocumentedPublicItem => "undocumented-public-item",
            RuleKind::RawThreadSpawn => "raw-thread-spawn",
            RuleKind::ConcurrencyDiscipline => "concurrency-discipline",
            RuleKind::FloatDeterminism => "float-determinism",
            RuleKind::CacheKeyCompleteness => "cache-key-completeness",
            RuleKind::PanicReachability => "panic-reachability",
            RuleKind::DeterminismTaint => "determinism-taint",
            RuleKind::ParDisjointness => "par-disjointness",
            RuleKind::ErrorTaxonomy => "error-taxonomy",
            RuleKind::IndexBounds => "index-bounds",
            RuleKind::ShapeConsistency => "shape-consistency",
            RuleKind::ExitCodeRegistry => "exit-code-registry",
        }
    }

    /// Every rule, for summaries and baseline validation.
    pub fn all() -> &'static [RuleKind] {
        &[
            RuleKind::UnwrapRatchet,
            RuleKind::PanicInKernel,
            RuleKind::UnsafeContract,
            RuleKind::UndocumentedPublicItem,
            RuleKind::RawThreadSpawn,
            RuleKind::ConcurrencyDiscipline,
            RuleKind::FloatDeterminism,
            RuleKind::CacheKeyCompleteness,
            RuleKind::PanicReachability,
            RuleKind::DeterminismTaint,
            RuleKind::ParDisjointness,
            RuleKind::ErrorTaxonomy,
            RuleKind::IndexBounds,
            RuleKind::ShapeConsistency,
            RuleKind::ExitCodeRegistry,
        ]
    }

    pub fn from_name(name: &str) -> Option<RuleKind> {
        RuleKind::all().iter().copied().find(|r| r.name() == name)
    }
}

/// Diagnostic severity. `Error` findings gate CI; `Warning`s inform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One structured finding, anchored to a file, 1-based line and column.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: RuleKind,
    pub severity: Severity,
    pub message: String,
    pub suggestion: Option<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] {}",
            self.file,
            self.line,
            self.col,
            self.severity.name(),
            self.rule.name(),
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (help: {s})")?;
        }
        Ok(())
    }
}

/// Which rule set applies to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileRules {
    /// Ban `panic!`/`todo!`/`unimplemented!` (numeric kernel crates).
    pub forbid_panic: bool,
    /// Require doc comments on `pub` items (the flagship API crate).
    pub require_docs: bool,
    /// Ban raw `thread::spawn` / `thread::Builder` (everywhere except the
    /// `amud-par` runtime itself).
    pub forbid_raw_threads: bool,
    /// Ban `Mutex`/`Condvar`/atomic construction (everywhere except
    /// `amud-par`, `amud-cache`, and `amud-serve` — the three crates whose
    /// job *is* concurrency: the pool runtime, the store, and the serving
    /// loop's admission queue / shared state).
    pub forbid_sync_primitives: bool,
    /// Ban unordered float reductions inside `par_*` closures (everywhere
    /// except `amud-par`, which hosts the approved ordered folds).
    pub float_determinism: bool,
    /// Ban raw-pointer derivation in `unsafe` bodies (everywhere except
    /// the disjoint-partition runtime in `amud-par`).
    pub confine_raw_pointers: bool,
    /// Check cache-key completeness of store-consulting functions.
    pub cache_key: bool,
}

/// Rule set for a workspace-relative path.
pub fn rules_for(path: &str) -> FileRules {
    let in_par = path.starts_with("crates/par/src/");
    let in_cache = path.starts_with("crates/cache/src/");
    let in_serve = path.starts_with("crates/serve/src/");
    let in_quant = path.starts_with("crates/quant/src/");
    FileRules {
        forbid_panic: path.starts_with("crates/nn/src/")
            || path.starts_with("crates/graph/src/")
            || in_par,
        require_docs: path.starts_with("crates/core/src/"),
        forbid_raw_threads: !in_par,
        forbid_sync_primitives: !in_par && !in_cache && !in_serve,
        float_determinism: !in_par,
        confine_raw_pointers: !in_par,
        // Quantization parameters (scales, precision codes) feed cache
        // keys and fingerprints, so amud-quant is governed like the
        // cache layer: every key-adjacent fn param must flow or be
        // KEY-EXEMPT-annotated.
        cache_key: in_cache || in_quant || path == "crates/core/src/precompute.rs",
    }
}

fn violation(
    path: &str,
    ix: &FileIndex,
    at: usize,
    rule: RuleKind,
    message: String,
    suggestion: Option<&str>,
) -> Violation {
    Violation {
        file: path.to_string(),
        line: ix.toks[at].line,
        col: ix.toks[at].col,
        rule,
        severity: Severity::Error,
        message,
        suggestion: suggestion.map(str::to_string),
    }
}

/// A per-file pass entry point; gating on [`rules_for`] happens inside.
pub(crate) type FilePass = fn(&str, &FileIndex, &mut Vec<Violation>);

fn gate_panic(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    if rules_for(path).forbid_panic {
        pass_panic(path, ix, out);
    }
}

fn gate_unsafe(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    pass_unsafe_contract(path, ix, rules_for(path).confine_raw_pointers, out);
}

fn gate_docs(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    if rules_for(path).require_docs {
        pass_docs(path, ix, out);
    }
}

fn gate_threads(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    if rules_for(path).forbid_raw_threads {
        pass_threads(path, ix, out);
    }
}

fn gate_sync(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    if rules_for(path).forbid_sync_primitives {
        pass_sync_primitives(path, ix, out);
    }
}

fn gate_float(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    if rules_for(path).float_determinism {
        pass_float_determinism(path, ix, out);
    }
}

fn gate_cache_key(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    if rules_for(path).cache_key {
        pass_cache_key(path, ix, out);
    }
}

/// The per-file passes in dispatch order, labelled by the rule they
/// enforce (the label feeds the `--timings` column).
pub(crate) const FILE_PASSES: &[(&str, FilePass)] = &[
    ("unwrap-ratchet", pass_unwrap),
    ("panic-in-kernel", gate_panic),
    ("unsafe-contract", gate_unsafe),
    ("undocumented-public-item", gate_docs),
    ("raw-thread-spawn", gate_threads),
    ("concurrency-discipline", gate_sync),
    ("float-determinism", gate_float),
    ("cache-key-completeness", gate_cache_key),
];

/// Runs every pass applicable to `path` over the indexed file.
pub fn run_passes(path: &str, ix: &FileIndex) -> Vec<Violation> {
    let mut out = Vec::new();
    for (_, pass) in FILE_PASSES {
        pass(path, ix, &mut out);
    }
    out.sort_by_key(|a| (a.line, a.col, a.rule));
    out
}

/// `.unwrap()` / `.expect(` occurrences in live code.
fn pass_unwrap(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    for i in 0..ix.toks.len() {
        if !ix.is_live(i) || !ix.toks[i].is_punct(".") {
            continue;
        }
        let Some(name) = next_code(&ix.toks, i + 1) else { continue };
        if !ix.toks[name].is_ident("unwrap") && !ix.toks[name].is_ident("expect") {
            continue;
        }
        let Some(paren) = next_code(&ix.toks, name + 1) else { continue };
        if !ix.toks[paren].is_punct("(") {
            continue;
        }
        out.push(violation(
            path,
            ix,
            name,
            RuleKind::UnwrapRatchet,
            format!("`.{}(…)` in library code", ix.toks[name].text),
            Some("handle the error, or budget it in lint-allow.txt with a justification"),
        ));
    }
}

/// `panic!` / `todo!` / `unimplemented!` in kernel crates.
fn pass_panic(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    for i in 0..ix.toks.len() {
        if !ix.is_live(i) || ix.toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = ix.toks[i].text.as_str();
        if !matches!(name, "panic" | "todo" | "unimplemented") {
            continue;
        }
        if next_code(&ix.toks, i + 1).is_some_and(|j| ix.toks[j].is_punct("!")) {
            out.push(violation(
                path,
                ix,
                i,
                RuleKind::PanicInKernel,
                format!("`{name}!` in a kernel crate"),
                Some("return a Result, document the invariant with expect(), or use unreachable! with a proof"),
            ));
        }
    }
}

/// Words the disjointness/aliasing argument of a SAFETY contract must use
/// at least one of (case-insensitive).
const CONTRACT_KEYWORDS: &[&str] = &[
    "disjoint",
    "exclusive",
    "alias",
    "outlive",
    "borrow",
    "valid",
    "bounds",
    "unique",
    "initialis",
    "initializ",
];

/// Raw-pointer-deriving intrinsics confined to `crates/par`.
const RAW_PTR_SOURCES: &[&str] =
    &["from_raw_parts", "from_raw_parts_mut", "transmute", "transmute_copy", "copy_nonoverlapping"];

/// Minimum contract length (chars after `SAFETY:`) before it counts as a
/// real argument rather than a placeholder.
const MIN_CONTRACT_LEN: usize = 40;

/// Structured `// SAFETY:` contracts on every unsafe site.
fn pass_unsafe_contract(path: &str, ix: &FileIndex, confine_ptrs: bool, out: &mut Vec<Violation>) {
    for site in ix.unsafe_sites() {
        let at = site.at;
        // The contract is the contiguous run of `//` comments whose lines
        // end directly above the `unsafe` keyword's line.
        let mut contract = String::new();
        let mut want_line = ix.toks[at].line;
        for j in (0..at).rev() {
            let t = &ix.toks[j];
            if t.is_code() {
                // Code earlier on the `unsafe` token's own line (e.g.
                // `let block = unsafe {…}`) does not end the search; code
                // on a line above does.
                if t.line >= want_line {
                    continue;
                }
                break;
            }
            if t.kind == TokKind::LineComment && t.line + 1 == want_line {
                want_line = t.line;
                contract = format!("{}\n{}", t.text, contract);
            } else if t.line >= want_line {
                continue;
            } else {
                break;
            }
        }
        // Keep only the part from `SAFETY:` onwards.
        let contract = match contract.find("SAFETY:") {
            Some(pos) => contract[pos + "SAFETY:".len()..].replace("//", " "),
            None => String::new(),
        };
        let kind_name = match site.kind {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
        };
        if contract.trim().is_empty() {
            out.push(violation(
                path,
                ix,
                at,
                RuleKind::UnsafeContract,
                format!("`unsafe` {kind_name} without a structured `// SAFETY:` contract"),
                Some("state the aliasing/disjointness argument in a // SAFETY: comment directly above"),
            ));
            continue;
        }
        let lower = contract.to_lowercase();
        if contract.trim().len() < MIN_CONTRACT_LEN
            || !CONTRACT_KEYWORDS.iter().any(|k| lower.contains(k))
        {
            out.push(violation(
                path,
                ix,
                at,
                RuleKind::UnsafeContract,
                format!(
                    "SAFETY contract on `unsafe` {kind_name} does not state an \
                     aliasing/disjointness argument"
                ),
                Some("name the disjointness/exclusivity/lifetime property that makes the operation sound"),
            ));
            continue;
        }
        // The contract must name code it governs: at least one identifier
        // from the unsafe span must appear as a word in the contract.
        let governed: BTreeSet<String> = ix.toks[at..site.body.end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text.len() >= 3)
            .map(|t| t.text.to_lowercase())
            .collect();
        let words: BTreeSet<String> = lower
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .filter(|w| w.len() >= 3)
            .map(str::to_string)
            .collect();
        if governed.is_disjoint(&words) {
            out.push(violation(
                path,
                ix,
                at,
                RuleKind::UnsafeContract,
                format!(
                    "SAFETY contract on `unsafe` {kind_name} names nothing from the code it governs"
                ),
                Some("reference the pointer/buffer/API the argument is about (e.g. the partition call that proves disjointness)"),
            ));
            continue;
        }
        if confine_ptrs {
            for j in site.body.clone() {
                if ix.is_live(j)
                    && ix.toks[j].kind == TokKind::Ident
                    && RAW_PTR_SOURCES.contains(&ix.toks[j].text.as_str())
                {
                    out.push(violation(
                        path,
                        ix,
                        j,
                        RuleKind::UnsafeContract,
                        format!(
                            "`{}` outside the disjoint-partition runtime",
                            ix.toks[j].text
                        ),
                        Some("derive cross-thread pointers only inside amud-par (par_row_blocks_mut and friends)"),
                    ));
                }
            }
        }
    }
}

/// Doc comments on public items (amud-core).
fn pass_docs(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    const ITEM_KEYWORDS: &[&str] =
        &["fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union"];
    const MODIFIERS: &[&str] = &["async", "unsafe", "const", "extern"];
    for i in 0..ix.toks.len() {
        if !ix.is_live(i) || !ix.toks[i].is_ident("pub") {
            continue;
        }
        // `pub(crate)` and friends are exempt; find the item keyword.
        let Some(mut j) = next_code(&ix.toks, i + 1) else { continue };
        if ix.toks[j].is_punct("(") {
            continue;
        }
        let mut hops = 0;
        while hops < 3 && MODIFIERS.contains(&ix.toks[j].text.as_str()) {
            match next_code(&ix.toks, j + 1) {
                Some(n) => j = n,
                None => break,
            }
            hops += 1;
        }
        if ix.toks[j].kind != TokKind::Ident || !ITEM_KEYWORDS.contains(&ix.toks[j].text.as_str()) {
            continue; // `pub use` re-exports and non-items are out of scope
        }
        let item_name =
            next_code(&ix.toks, j + 1).map(|n| ix.toks[n].text.clone()).unwrap_or_default();
        // Walk backwards over attributes looking for a doc comment.
        let mut k = i;
        let mut documented = false;
        while k > 0 {
            let p = k - 1;
            let t = &ix.toks[p];
            match t.kind {
                TokKind::LineComment if t.text.starts_with("///") => {
                    documented = true;
                    break;
                }
                TokKind::BlockComment if t.text.starts_with("/**") => {
                    documented = true;
                    break;
                }
                TokKind::Punct if t.text == "]" => {
                    // Skip the attribute: find its matching `[` then `#`.
                    let mut depth = 0isize;
                    let mut m = p;
                    loop {
                        if ix.toks[m].is_punct("]") {
                            depth += 1;
                        } else if ix.toks[m].is_punct("[") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        if m == 0 {
                            break;
                        }
                        m -= 1;
                    }
                    k = if m > 0 && ix.toks[m - 1].is_punct("#") { m - 1 } else { m };
                }
                _ => break,
            }
        }
        if !documented {
            out.push(violation(
                path,
                ix,
                i,
                RuleKind::UndocumentedPublicItem,
                format!("public item `{} {item_name}` has no doc comment", ix.toks[j].text),
                Some("add a /// doc comment (amud-core is the crate other people read first)"),
            ));
        }
    }
}

/// `thread::spawn` / `thread::Builder` outside amud-par.
fn pass_threads(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    for i in 0..ix.toks.len() {
        if !ix.is_live(i) || !ix.toks[i].is_ident("thread") {
            continue;
        }
        let Some(sep) = next_code(&ix.toks, i + 1) else { continue };
        if !ix.toks[sep].is_punct("::") {
            continue;
        }
        let Some(name) = next_code(&ix.toks, sep + 1) else { continue };
        if ix.toks[name].is_ident("spawn") || ix.toks[name].is_ident("Builder") {
            out.push(violation(
                path,
                ix,
                i,
                RuleKind::RawThreadSpawn,
                format!("`thread::{}` outside amud-par", ix.toks[name].text),
                Some("use the deterministic runtime (amud_par::run / par_row_blocks_mut) instead"),
            ));
        }
    }
}

/// Synchronisation primitives whose construction is confined to
/// `crates/par` and `crates/cache`.
const SYNC_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicBool",
];

fn pass_sync_primitives(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    for i in 0..ix.toks.len() {
        if !ix.is_live(i)
            || ix.toks[i].kind != TokKind::Ident
            || !SYNC_TYPES.contains(&ix.toks[i].text.as_str())
        {
            continue;
        }
        let Some(sep) = next_code(&ix.toks, i + 1) else { continue };
        if !ix.toks[sep].is_punct("::") {
            continue;
        }
        let Some(name) = next_code(&ix.toks, sep + 1) else { continue };
        if ix.toks[name].is_ident("new") {
            out.push(violation(
                path,
                ix,
                i,
                RuleKind::ConcurrencyDiscipline,
                format!("`{}::new` outside amud-par/amud-cache", ix.toks[i].text),
                Some("synchronisation state lives in crates/par and crates/cache, whose determinism contracts are proptested — or baseline with a written justification"),
            ));
        }
    }
}

/// Unordered float reductions inside `par_*` closures, plus hand-rolled
/// `[f32; N]` lane-accumulator folds anywhere in the file.
fn pass_float_determinism(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    pass_raw_lane_accumulators(path, ix, out);
    for body in ix.par_closure_bodies() {
        for i in body.clone() {
            if !ix.is_live(i) {
                continue;
            }
            let t = &ix.toks[i];
            // `.sum(…)` / `.sum::<f32>()` — iterator reduction.
            if t.is_punct(".") {
                let Some(name) = next_code(&ix.toks, i + 1) else { continue };
                if name >= body.end {
                    continue;
                }
                if ix.toks[name].is_ident("sum")
                    || ix.toks[name].is_ident("fold")
                    || ix.toks[name].is_ident("product")
                {
                    out.push(violation(
                        path,
                        ix,
                        name,
                        RuleKind::FloatDeterminism,
                        format!(
                            "iterator `.{}(…)` inside a parallel closure",
                            ix.toks[name].text
                        ),
                        Some("use amud_par::lane_sum / lane_dot (the canonical lane-folded order) or ordered_sum / ordered_dot, or an explicit indexed loop"),
                    ));
                }
                continue;
            }
            // Bare-identifier compound accumulation: `acc += …`. Writes
            // through the task's own block (`*o += …`, `block[i] += …`,
            // `s.field += …`) are the deterministic per-element updates the
            // kernels are built on and stay allowed.
            if t.kind == TokKind::Punct && matches!(t.text.as_str(), "+=" | "-=" | "*=" | "/=") {
                let Some(lhs) = prev_code(&ix.toks, i) else { continue };
                if ix.toks[lhs].kind != TokKind::Ident {
                    continue;
                }
                let bare = match prev_code(&ix.toks, lhs) {
                    None => true,
                    Some(p) => {
                        let pt = &ix.toks[p];
                        pt.kind == TokKind::Punct
                            && matches!(pt.text.as_str(), ";" | "{" | "}" | "(" | "," | "|" | "=>")
                    }
                };
                if bare {
                    out.push(violation(
                        path,
                        ix,
                        lhs,
                        RuleKind::FloatDeterminism,
                        format!(
                            "`{} {}` accumulates into a closure-local inside a parallel region",
                            ix.toks[lhs].text, t.text
                        ),
                        Some("reduce via amud_par::lane_sum / lane_dot (or ordered_sum / ordered_dot), or write each element through the task's own output block"),
                    ));
                }
            }
        }
    }
}

/// A float literal token: has a decimal point or an explicit f32/f64
/// suffix (`0.0`, `0.0f32`, `0f32`, `1e-3f32`, …).
fn is_float_literal(t: &crate::tokenizer::Tok) -> bool {
    t.kind == TokKind::NumLit
        && (t.text.contains('.') || t.text.ends_with("f32") || t.text.ends_with("f64"))
}

/// Hand-rolled lane accumulators: `let mut acc = [0.0f32; N]` (or with an
/// explicit `[f32; N]` type ascription) later folded through an indexed
/// compound assignment `acc[…] += …`. That is a partial-sums reduction
/// whose tree shape is pinned nowhere — exactly the pattern `amud_par::
/// lanes` exists to own. Outside `crates/par` the fold must go through
/// `lane_sum`/`lane_dot`, whose reduction tree is canonical and
/// proptested, so the autovectorizer story never forks the numerics.
fn pass_raw_lane_accumulators(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    for i in 0..ix.toks.len() {
        if !ix.is_live(i) || !ix.toks[i].is_ident("let") {
            continue;
        }
        let Some(mut_i) = next_code(&ix.toks, i + 1).filter(|&j| ix.toks[j].is_ident("mut")) else {
            continue;
        };
        let Some(name_i) = next_code(&ix.toks, mut_i + 1) else { continue };
        if ix.toks[name_i].kind != TokKind::Ident {
            continue;
        }
        let name = ix.toks[name_i].text.clone();
        // Optional `: [f32; N]` ascription.
        let mut j = match next_code(&ix.toks, name_i + 1) {
            Some(j) => j,
            None => continue,
        };
        let mut ascribed_float_array = false;
        if ix.toks[j].is_punct(":") {
            let Some(open) = next_code(&ix.toks, j + 1).filter(|&k| ix.toks[k].is_punct("["))
            else {
                continue;
            };
            ascribed_float_array = next_code(&ix.toks, open + 1)
                .map(|k| ix.toks[k].is_ident("f32") || ix.toks[k].is_ident("f64"))
                .unwrap_or(false);
            let Some(close) = match_delim(&ix.toks, open) else { continue };
            j = match next_code(&ix.toks, close + 1) {
                Some(j) => j,
                None => continue,
            };
        }
        if !ix.toks[j].is_punct("=") {
            continue;
        }
        // Repeat-array float init: `[<float-lit>; <len>]`.
        let float_repeat_init = next_code(&ix.toks, j + 1)
            .filter(|&k| ix.toks[k].is_punct("["))
            .and_then(|open| {
                let lit = next_code(&ix.toks, open + 1)?;
                let semi = next_code(&ix.toks, lit + 1)?;
                Some(is_float_literal(&ix.toks[lit]) && ix.toks[semi].is_punct(";"))
            })
            .unwrap_or(false);
        if !ascribed_float_array && !float_repeat_init {
            continue;
        }
        // Is the accumulator ever folded by index? `acc[…] += …` (or any
        // compound float assignment through an index).
        let mut k = name_i + 1;
        let mut folded = false;
        while let Some(u) =
            ix.toks[k..].iter().position(|t| t.text == name && t.kind == TokKind::Ident)
        {
            let use_i = k + u;
            k = use_i + 1;
            if !ix.is_live(use_i) {
                continue;
            }
            let Some(open) = next_code(&ix.toks, use_i + 1).filter(|&v| ix.toks[v].is_punct("["))
            else {
                continue;
            };
            let Some(close) = match_delim(&ix.toks, open) else { continue };
            let compound = next_code(&ix.toks, close + 1)
                .map(|v| {
                    ix.toks[v].kind == TokKind::Punct
                        && matches!(ix.toks[v].text.as_str(), "+=" | "-=" | "*=" | "/=")
                })
                .unwrap_or(false);
            if compound {
                folded = true;
                break;
            }
        }
        if folded {
            out.push(violation(
                path,
                ix,
                name_i,
                RuleKind::FloatDeterminism,
                format!("raw `[f32; N]` lane accumulator `{name}` folded outside crates/par"),
                Some("partial-sums reductions belong to amud_par::lanes — reduce via amud_par::lane_sum / lane_dot so the tree shape stays canonical"),
            ));
        }
    }
}

/// Cache-key completeness: every parameter of a store-consulting function
/// flows into the key or is explicitly exempted.
fn pass_cache_key(path: &str, ix: &FileIndex, out: &mut Vec<Violation>) {
    for f in ix.fn_items() {
        // Collect the identifiers of every `<x>_store(…).get(<key>)` call's
        // key expression inside this function.
        let mut key_idents: BTreeSet<String> = BTreeSet::new();
        let mut consults_store = false;
        let mut i = f.body.start;
        while i < f.body.end {
            let is_store = ix.is_live(i)
                && ix.toks[i].kind == TokKind::Ident
                && ix.toks[i].text.ends_with("_store");
            if is_store {
                if let Some(open) = next_code(&ix.toks, i + 1).filter(|&j| ix.toks[j].is_punct("("))
                {
                    if let Some(close) = match_delim(&ix.toks, open) {
                        let dotted = next_code(&ix.toks, close + 1)
                            .filter(|&j| ix.toks[j].is_punct("."))
                            .and_then(|j| next_code(&ix.toks, j + 1))
                            .filter(|&j| ix.toks[j].is_ident("get"));
                        if let Some(get_i) = dotted {
                            if let Some(arg_open) =
                                next_code(&ix.toks, get_i + 1).filter(|&j| ix.toks[j].is_punct("("))
                            {
                                if let Some(arg_close) = match_delim(&ix.toks, arg_open) {
                                    consults_store = true;
                                    for k in arg_open + 1..arg_close {
                                        if ix.is_live(k) && ix.toks[k].kind == TokKind::Ident {
                                            key_idents.insert(ix.toks[k].text.clone());
                                        }
                                    }
                                    i = arg_close + 1;
                                    continue;
                                }
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        if !consults_store {
            continue;
        }
        // Expand key identifiers through one-level `let` bindings to a
        // fixpoint: `let fp = fingerprint(adj); let key = (fp, n)` covers
        // `adj`.
        let lets = ix.let_bindings(&f.body);
        loop {
            let mut grew = false;
            for (name, deps) in &lets {
                if key_idents.contains(name) {
                    for d in deps {
                        grew |= key_idents.insert(d.clone());
                    }
                }
            }
            if !grew {
                break;
            }
        }
        // `// KEY-EXEMPT(param): reason` comments inside the function body.
        let mut exempt: BTreeSet<String> = BTreeSet::new();
        for j in f.body.clone() {
            let t = &ix.toks[j];
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            let mut rest = t.text.as_str();
            while let Some(pos) = rest.find("KEY-EXEMPT(") {
                rest = &rest[pos + "KEY-EXEMPT(".len()..];
                if let Some(end) = rest.find(')') {
                    let name = rest[..end].trim();
                    let after = rest[end + 1..].trim_start();
                    // The justification must actually exist.
                    if after.starts_with(':') && after[1..].trim().len() >= 10 {
                        exempt.insert(name.to_string());
                    }
                }
            }
        }
        for p in &f.params {
            if !key_idents.contains(p) && !exempt.contains(p) {
                out.push(violation(
                    path,
                    ix,
                    f.at,
                    RuleKind::CacheKeyCompleteness,
                    format!(
                        "parameter `{p}` of `{}` does not flow into the cache key it looks up",
                        f.name
                    ),
                    Some("fingerprint it into the key, or add `// KEY-EXEMPT(param): reason` explaining why identity is covered"),
                ));
            }
        }
    }
}
