//! Report rendering for `amud-analyze`: the machine-readable
//! `analyze-report.json` and the human summary printed by `ci.sh`.
//!
//! The JSON is deliberately hand-rendered (std-only workspace) and
//! deterministic: violations are sorted, there are no timestamps, and maps
//! iterate in `BTreeMap` order — so golden-snapshot tests can compare the
//! exact bytes.

use crate::passes::Violation;
use crate::Resolution;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn violation_json(v: &Violation, class: &str, indent: &str) -> String {
    let mut out = format!(
        "{indent}{{\n\
         {indent}  \"file\": \"{}\",\n\
         {indent}  \"line\": {},\n\
         {indent}  \"col\": {},\n\
         {indent}  \"rule\": \"{}\",\n\
         {indent}  \"severity\": \"{}\",\n\
         {indent}  \"class\": \"{class}\",\n\
         {indent}  \"message\": \"{}\"",
        esc(&v.file),
        v.line,
        v.col,
        v.rule.name(),
        v.severity.name(),
        esc(&v.message),
    );
    if let Some(s) = &v.suggestion {
        let _ = write!(out, ",\n{indent}  \"suggestion\": \"{}\"", esc(s));
    }
    let _ = write!(out, "\n{indent}}}");
    out
}

/// Renders the full machine-readable report.
pub fn render_json(files_scanned: usize, res: &Resolution) -> String {
    let mut out = String::from("{\n  \"schema\": \"amud-analyze/1\",\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");

    out.push_str("  \"summary\": {");
    let summary = summary_counts(res);
    let mut first = true;
    for (rule, [fresh, regressions, baselined]) in &summary {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    \"{rule}\": {{ \"fresh\": {fresh}, \"regressions\": {regressions}, \"baselined\": {baselined} }}"
        );
    }
    out.push_str(if summary.is_empty() { "},\n" } else { "\n  },\n" });

    out.push_str("  \"violations\": [");
    let mut first = true;
    for (v, class) in res
        .fresh
        .iter()
        .map(|v| (v, "fresh"))
        .chain(res.regressions.iter().map(|v| (v, "regression")))
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&violation_json(v, class, "    "));
    }
    out.push_str(if res.fresh.is_empty() && res.regressions.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"notes\": [");
    let mut first = true;
    for n in &res.notes {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\"", esc(n));
    }
    out.push_str(if res.notes.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Per-rule `[fresh, regressions, baselined]` counts, sorted by rule name.
/// Every registered rule appears — zero rows included — so a pass that
/// went silent is visible in the summary and report diffs stay aligned
/// across runs.
pub fn summary_counts(res: &Resolution) -> BTreeMap<String, [usize; 3]> {
    let mut map: BTreeMap<String, [usize; 3]> = BTreeMap::new();
    for rule in crate::RuleKind::all() {
        map.insert(rule.name().to_string(), [0; 3]);
    }
    for v in &res.fresh {
        map.entry(v.rule.name().to_string()).or_default()[0] += 1;
    }
    for v in &res.regressions {
        map.entry(v.rule.name().to_string()).or_default()[1] += 1;
    }
    for (rule, n) in &res.baselined {
        map.entry(rule.clone()).or_default()[2] += n;
    }
    map
}

/// The human summary printed after a run.
pub fn render_summary(files_scanned: usize, res: &Resolution) -> String {
    let mut out = String::new();
    let summary = summary_counts(res);
    for (rule, [fresh, regressions, baselined]) in &summary {
        let _ = writeln!(
            out,
            "  {rule:<26} fresh {fresh:>3}   regressions {regressions:>3}   baselined {baselined:>3}"
        );
    }
    let _ = writeln!(
        out,
        "amud-analyze: {files_scanned} file(s), {} fresh violation(s), {} regression(s), {} baselined, {} note(s)",
        res.fresh.len(),
        res.regressions.len(),
        res.baselined.values().sum::<usize>(),
        res.notes.len()
    );
    out
}

/// The `--timings` variant of [`render_summary`]: the same per-rule rows
/// with a wall-time column, followed by the pipeline stages that are not
/// rules (lexing, symbol fusion) and a parseable total line. Timings are
/// human output only — they never enter `analyze-report.json`, which must
/// stay byte-identical across runs.
pub fn render_summary_timed(
    files_scanned: usize,
    res: &Resolution,
    timings: &[(String, std::time::Duration)],
) -> String {
    let ms = |d: &std::time::Duration| d.as_secs_f64() * 1000.0;
    let by_name: BTreeMap<&str, f64> = timings.iter().map(|(n, d)| (n.as_str(), ms(d))).collect();
    let mut out = String::new();
    let summary = summary_counts(res);
    for (rule, [fresh, regressions, baselined]) in &summary {
        let t = by_name.get(rule.as_str()).copied().unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  {rule:<26} fresh {fresh:>3}   regressions {regressions:>3}   baselined {baselined:>3}   {t:>8.2} ms"
        );
    }
    for (name, d) in timings {
        if !summary.contains_key(name.as_str()) {
            let t = ms(d);
            let _ = writeln!(out, "  {name:<26} (pipeline stage){:>29}{t:>8.2} ms", "");
        }
    }
    let total: f64 = timings.iter().map(|(_, d)| ms(d)).sum();
    let _ = writeln!(out, "amud-analyze: analysis wall time {:.0} ms", total.ceil());
    let _ = writeln!(
        out,
        "amud-analyze: {files_scanned} file(s), {} fresh violation(s), {} regression(s), {} baselined, {} note(s)",
        res.fresh.len(),
        res.regressions.len(),
        res.baselined.values().sum::<usize>(),
        res.notes.len()
    );
    out
}
