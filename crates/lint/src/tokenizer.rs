//! A real Rust tokenizer (std-only) — the foundation of `amud-analyze`.
//!
//! The line-regex scanner this replaced could not tell a `panic!` inside a
//! string literal from one in code, nor see where an `unsafe` block ends.
//! This lexer produces a faithful token stream — strings (plain, raw,
//! byte), char literals vs lifetimes, nested block comments, numeric
//! literals with exponents, multi-char operators — over which the analysis
//! passes do *structural* matching (brace-matched item extraction,
//! closure-body spans) instead of line grepping.
//!
//! The tokenizer is deliberately lossless about position: every token
//! carries its 1-based line and column, so diagnostics anchor to
//! `file:line:col` exactly.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime such as `'a` or `'static` (leading quote included).
    Lifetime,
    /// Character or byte literal: `'x'`, `'\n'`, `b'0'`.
    CharLit,
    /// String or byte-string literal: `"…"`, `b"…"` (quotes included).
    StrLit,
    /// Raw (byte-)string literal: `r"…"`, `r#"…"#`, `br#"…"#`.
    RawStrLit,
    /// Numeric literal: `42`, `0xcbf2_9ce4`, `1.0e-5`, `0.21f32`.
    NumLit,
    /// `//`-to-end-of-line comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting handled (doc comments included).
    BlockComment,
    /// Punctuation / operator, multi-char operators lexed as one token
    /// (`::`, `->`, `+=`, `..=`, …).
    Punct,
}

/// One lexed token with its source text and 1-based position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// Whether this token participates in code (comments do not).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this is a `Punct` token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }

    /// Whether this is an `Ident` token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// Multi-char operators, longest first so maximal munch is a linear scan.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_into(&mut self, buf: &mut String) {
        if let Some(c) = self.bump() {
            buf.push(c);
        }
    }

    /// Consumes a quoted span until the unescaped `quote` char (or EOF).
    fn quoted(&mut self, quote: char, buf: &mut String) {
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump_into(buf);
                self.bump_into(buf); // the escaped char, even if it is `quote`
                continue;
            }
            self.bump_into(buf);
            if c == quote {
                return;
            }
        }
    }

    /// Consumes a raw string body: `#…#"…"#…#` with `hashes` delimiters.
    /// The opening hashes/quote have *not* been consumed yet.
    fn raw_string(&mut self, buf: &mut String) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump_into(buf);
            hashes += 1;
        }
        if self.peek(0) != Some('"') {
            return; // `r#ident` handled by the caller; nothing to do here
        }
        self.bump_into(buf); // opening quote
        loop {
            match self.peek(0) {
                None => return,
                Some('"') => {
                    self.bump_into(buf);
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump_into(buf);
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => self.bump_into(buf),
            }
        }
    }

    /// Whether the chars at `pos` start a raw string (after an `r`/`br`
    /// prefix already peeked by the caller): zero or more `#` then `"`.
    fn raw_string_follows(&self, mut ahead: usize) -> bool {
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes Rust source. The lexer never fails: malformed input degrades
/// to best-effort punctuation tokens, which is the right behaviour for a
/// linter that must not crash on the code it is criticising.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let mut lx = Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1 };
    let mut toks = Vec::new();

    // Shebang: a leading `#!` not followed by `[` is an interpreter line
    // (rustc accepts it on executable sources), not an inner attribute —
    // consume the whole first line as a comment token.
    if lx.peek(0) == Some('#') && lx.peek(1) == Some('!') && lx.peek(2) != Some('[') {
        let mut text = String::new();
        while let Some(n) = lx.peek(0) {
            if n == '\n' {
                break;
            }
            lx.bump_into(&mut text);
        }
        toks.push(Tok { kind: TokKind::LineComment, text, line: 1, col: 1 });
    }

    'outer: while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        let mut text = String::new();

        // Whitespace.
        if c.is_whitespace() {
            lx.bump();
            continue;
        }

        // Comments.
        if c == '/' && lx.peek(1) == Some('/') {
            while let Some(n) = lx.peek(0) {
                if n == '\n' {
                    break;
                }
                lx.bump_into(&mut text);
            }
            toks.push(Tok { kind: TokKind::LineComment, text, line, col });
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            lx.bump_into(&mut text);
            lx.bump_into(&mut text);
            let mut depth = 1usize;
            while depth > 0 {
                match (lx.peek(0), lx.peek(1)) {
                    (Some('/'), Some('*')) => {
                        lx.bump_into(&mut text);
                        lx.bump_into(&mut text);
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        lx.bump_into(&mut text);
                        lx.bump_into(&mut text);
                        depth -= 1;
                    }
                    (Some(_), _) => lx.bump_into(&mut text),
                    (None, _) => break,
                }
            }
            toks.push(Tok { kind: TokKind::BlockComment, text, line, col });
            continue;
        }

        // Lifetimes vs char literals.
        if c == '\'' {
            // `'\…'` is always a char literal; `'x'` (any single char then a
            // quote) likewise; everything else (`'a`, `'static`) a lifetime.
            let is_char =
                lx.peek(1) == Some('\\') || (lx.peek(2) == Some('\'') && lx.peek(1) != Some('\''));
            lx.bump_into(&mut text); // the opening quote
            if is_char {
                lx.quoted('\'', &mut text);
                toks.push(Tok { kind: TokKind::CharLit, text, line, col });
            } else {
                while let Some(n) = lx.peek(0) {
                    if !is_ident_continue(n) {
                        break;
                    }
                    lx.bump_into(&mut text);
                }
                toks.push(Tok { kind: TokKind::Lifetime, text, line, col });
            }
            continue;
        }

        // String-ish prefixes: r"", r#""#, b"", br#""#, b'', and raw idents.
        if is_ident_start(c) {
            let raw = match c {
                'r' if lx.raw_string_follows(1) => true,
                'b' if lx.peek(1) == Some('r') && lx.raw_string_follows(2) => {
                    lx.bump_into(&mut text); // the `b`
                    true
                }
                _ => false,
            };
            if raw {
                lx.bump_into(&mut text); // the `r`
                lx.raw_string(&mut text);
                toks.push(Tok { kind: TokKind::RawStrLit, text, line, col });
                continue;
            }
            if c == 'b' && lx.peek(1) == Some('"') {
                lx.bump_into(&mut text);
                lx.bump_into(&mut text);
                lx.quoted('"', &mut text);
                toks.push(Tok { kind: TokKind::StrLit, text, line, col });
                continue;
            }
            if c == 'b' && lx.peek(1) == Some('\'') {
                lx.bump_into(&mut text);
                lx.bump_into(&mut text);
                lx.quoted('\'', &mut text);
                toks.push(Tok { kind: TokKind::CharLit, text, line, col });
                continue;
            }
            // Raw identifier `r#ident`.
            if c == 'r' && lx.peek(1) == Some('#') && lx.peek(2).is_some_and(is_ident_start) {
                lx.bump_into(&mut text);
                lx.bump_into(&mut text);
            }
            while let Some(n) = lx.peek(0) {
                if !is_ident_continue(n) {
                    break;
                }
                lx.bump_into(&mut text);
            }
            toks.push(Tok { kind: TokKind::Ident, text, line, col });
            continue;
        }

        // Plain strings.
        if c == '"' {
            lx.bump_into(&mut text);
            lx.quoted('"', &mut text);
            toks.push(Tok { kind: TokKind::StrLit, text, line, col });
            continue;
        }

        // Numbers (incl. `1.0`, `1e-5`, `0xff_u32`; `0..n` must not eat `..`).
        if c.is_ascii_digit() {
            lx.bump_into(&mut text);
            loop {
                match lx.peek(0) {
                    Some(n) if is_ident_continue(n) => {
                        lx.bump_into(&mut text);
                        // Exponent sign: `1e-5`, `2.5E+10`.
                        if (n == 'e' || n == 'E')
                            && !text.starts_with("0x")
                            && matches!(lx.peek(0), Some('+') | Some('-'))
                            && lx.peek(1).is_some_and(|d| d.is_ascii_digit())
                        {
                            lx.bump_into(&mut text);
                        }
                    }
                    Some('.')
                        if lx.peek(1).is_some_and(|d| d.is_ascii_digit())
                            && !text.contains('.') =>
                    {
                        lx.bump_into(&mut text);
                    }
                    _ => break,
                }
            }
            toks.push(Tok { kind: TokKind::NumLit, text, line, col });
            continue;
        }

        // Multi-char operators (maximal munch), then single punctuation.
        for op in MULTI_PUNCT {
            if op.chars().enumerate().all(|(i, oc)| lx.peek(i) == Some(oc)) {
                for _ in 0..op.len() {
                    lx.bump_into(&mut text);
                }
                toks.push(Tok { kind: TokKind::Punct, text, line, col });
                continue 'outer;
            }
        }
        lx.bump_into(&mut text);
        toks.push(Tok { kind: TokKind::Punct, text, line, col });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn shebang_line_is_a_comment() {
        let toks = kinds("#!/usr/bin/env run-cargo-script\nfn main() { x.unwrap(); }\n");
        assert_eq!(toks[0].0, TokKind::LineComment);
        assert!(toks[0].1.starts_with("#!/usr/bin/env"));
        // The rest of the file still lexes as code.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "main"));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "env"));
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let toks = kinds("#![allow(dead_code)]\nfn main() {}\n");
        assert_eq!(toks[0], (TokKind::Punct, "#".to_string()));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "allow"));
    }

    #[test]
    fn strings_hide_their_contents_from_code() {
        let toks = kinds(r#"let s = "panic! .unwrap() unsafe";"#);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::StrLit && t.contains("panic!")));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r##"let s = r#"a "quoted" \ thing"#; let t = 1;"##;
        let toks = kinds(src);
        let raw = toks.iter().find(|(k, _)| *k == TokKind::RawStrLit).expect("raw string");
        assert!(raw.1.contains("quoted"));
        // Lexing resumes correctly after the raw string.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "t"));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let toks = kinds(r###"let a = b"bytes"; let b = br#"raw"#; let c = b'x';"###);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::StrLit && t.starts_with("b\"")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::RawStrLit && t.starts_with("br#")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::CharLit && t == "b'x'"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'static str { 'x' }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::CharLit && t == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let a = '\''; let b = '\n'; let c = '\u{1F600}';");
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(chars.len(), 3, "chars: {chars:?}");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert!(toks[1].1.contains("still comment"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("for i in 0..n { let x = 1.max(2); let y = 1.5e-3f32; }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::NumLit && t == "1.5e-3f32"));
    }

    #[test]
    fn hex_literals_with_underscores() {
        let toks = kinds("const P: u64 = 0xcbf2_9ce4_8422_2325;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::NumLit && t == "0xcbf2_9ce4_8422_2325"));
    }

    #[test]
    fn compound_operators_lex_as_one_token() {
        let toks = kinds("a += b; c ..= d; e :: f; g -> h");
        for op in ["+=", "..=", "::", "->"] {
            assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == op), "missing {op}");
        }
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#fn = 1; let r = 2;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#fn"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = tokenize("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn doc_comments_are_comments() {
        let toks = tokenize("/// doc\n//! inner\n/** block doc */\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[2].kind, TokKind::BlockComment);
        assert!(toks[3].is_ident("fn"));
    }
}
