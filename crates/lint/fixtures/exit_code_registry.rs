//! Seeded `exit-code-registry` fixture: a documented train-side code, an
//! undocumented code flowing through an exit sink, and a serve-owned code
//! claimed from the train side.

/// Exit helper; constants flowing through it are claims at the call site.
fn die(msg: &str, code: i32) -> ! {
    eprintln!("{msg}");
    std::process::exit(code)
}

/// Documented: code 3 (bad input) belongs to the train-side table.
pub fn bad_input() -> ! {
    std::process::exit(3)
}

/// VIOLATION: 42 appears in no exit-code table.
pub fn undocumented() -> ! {
    die("boom", 42)
}

/// VIOLATION: 9 (snapshot error) belongs to the serve-side table.
pub fn wrong_domain() -> ! {
    std::process::exit(9)
}
