//! Seeded `index-bounds` fixture: proved accesses, an audited escape, and
//! three violations the abstract domain must flag.

/// Proved: the loop bound is the container length.
pub fn proved_loop(a: &[f32]) -> f32 {
    let mut s = 0.0;
    for i in 0..a.len() {
        s += a[i];
    }
    s
}

/// Proved: a symbolic alias of the length still dominates the access.
pub fn proved_alias(a: &[f32]) -> f32 {
    let n = a.len();
    let m = n;
    let mut s = 0.0;
    for i in 0..m {
        s += a[i];
    }
    s
}

/// Proved: the lane-blocked window carries a slice-length fact and the
/// scaled index stays under the rounded-down bound.
pub fn proved_window(a: &[f32]) -> f32 {
    let n = a.len() - a.len() % 4;
    let mut s = 0.0;
    for i in 0..n / 4 {
        let w = &a[i * 4..i * 4 + 4];
        s += w[0] + w[3];
    }
    s
}

/// Audited: the caller contract is recorded in a `BOUNDS` escape.
pub fn audited(a: &[f32], i: usize) -> f32 {
    // BOUNDS(a): callers uphold i < a.len() by the gather contract
    a[i]
}

/// VIOLATION: nothing dominates `i`.
pub fn unproved(a: &[f32], i: usize) -> f32 {
    a[i]
}

/// VIOLATION: the rebind killed the length fact.
pub fn shadowed(a: &[f32]) -> f32 {
    let n = a.len();
    let n = n + 1;
    let mut s = 0.0;
    for i in 0..n {
        s += a[i];
    }
    s
}

/// VIOLATION: a placeholder escape reason does not count as an audit.
pub fn placeholder(a: &[f32], i: usize) -> f32 {
    // BOUNDS(a): todo
    a[i]
}
