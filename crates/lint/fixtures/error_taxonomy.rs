//! Seeded violation: public fallible functions in a user-facing crate
//! returning stringly-typed errors. Expected findings under the label
//! `crates/datasets/src/fixture.rs`:
//!   2 × error-taxonomy (`Result<_, String>` and `Result<_, Box<dyn Error>>`)

pub fn load(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("read {path}: {e}"))
}

pub fn parse(text: &str) -> Result<usize, Box<dyn std::error::Error>> {
    Ok(text.trim().len())
}
