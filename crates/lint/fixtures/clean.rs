//! Lint fixture: the engine's negative control — a file every pass
//! accepts. Exercised by `ci.sh` in explicit-file mode (exit code 0) and
//! by the golden tests as the all-clean snapshot.

/// Largest entry of a slice (`NEG_INFINITY` when empty).
pub fn max_entry(xs: &[f32]) -> f32 {
    let mut best = f32::NEG_INFINITY;
    for &x in xs {
        best = best.max(x);
    }
    best
}

/// Strings and comments must hide rule tokens: .unwrap() panic! unsafe.
pub fn decoys() -> &'static str {
    // a comment may say thread::spawn without tripping the pass
    "string contents may say Mutex::new and .sum::<f32>() freely"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap() {
        let v: Result<f32, ()> = Ok(max_entry(&[1.0]));
        assert_eq!(v.unwrap(), 1.0);
    }
}
