//! Lint fixture: seeded violation for the `cache-key-completeness` pass.
//! Never compiled — only analyzed (under a `crates/cache` label).
//!
//! Expected findings: `incomplete` drops `conv_r` from its key. `complete`
//! (full coverage through `let` dataflow) and `exempted` (justified
//! KEY-EXEMPT) must NOT fire.

pub fn incomplete(adj: &CsrMatrix, conv_r: f32, max_order: usize) -> Option<Thing> {
    let fp = fingerprint_csr(adj);
    let key = (fp, max_order);
    norm_store().get(&key)
}

pub fn complete(adj: &CsrMatrix, max_order: usize) -> Option<Thing> {
    let fp = fingerprint_csr(adj);
    let key = (fp, max_order);
    norm_store().get(&key)
}

pub fn exempted(adj: &CsrMatrix, k_steps: usize) -> Option<Thing> {
    // KEY-EXEMPT(k_steps): depth is not identity — the cached entry serves
    // any requested depth as a prefix view.
    let key = fingerprint_csr(adj);
    feat_store().get(&key)
}
