//! Stress fixture for the abstract-interpretation domain: every access is
//! provable, but only by composing several rules — min chains at full
//! width, tuple destructuring, aligned chunking, window closures, scaled
//! lane indices, and interprocedural method summaries. The golden expects
//! zero findings.

/// Five-operand min chain: each operand's length fact must survive the
/// structural peel without exhausting proof depth.
pub fn axpy4_like(out: &mut [f32], a: &[f32], b: &[f32], c: &[f32], d: &[f32]) {
    let n = out.len().min(a.len()).min(b.len()).min(c.len()).min(d.len());
    for i in 0..n {
        out[i] += a[i] + b[i] + c[i] + d[i];
    }
}

/// Tuple destructuring binds both lengths in one `let`.
pub fn tuple_bound(a: &[f32], b: &[f32]) -> f32 {
    let (n, m) = (a.len(), b.len());
    let mut s = 0.0;
    for i in 0..n {
        s += a[i];
    }
    for j in 0..m {
        s += b[j];
    }
    s
}

/// `chunks_exact` width is a length fact on the chunk binding.
pub fn chunked(a: &[f32]) -> f32 {
    let mut s = 0.0;
    for ch in a.chunks_exact(8) {
        s += ch[0] + ch[7];
    }
    s
}

/// `windows(2)` closures get a window-length fact.
pub fn is_sorted(p: &[usize]) -> bool {
    p.windows(2).all(|w| w[0] <= w[1])
}

/// Nested lane blocking: the outer bound divides by the window width and
/// the inner scaled index recombines with it.
pub fn lane_blocked(a: &[f32]) -> f32 {
    let main = a.len() - a.len() % 4;
    let mut s = 0.0;
    for tb in 0..main / 4 {
        let t = tb * 4;
        s += a[t] + a[t + 1] + a[t + 2] + a[t + 3];
    }
    for t in main..a.len() {
        s += a[t];
    }
    s
}

/// Row-major container with a getter and a row summary.
pub struct Grid {
    data: Vec<f32>,
    cols: usize,
}

impl Grid {
    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        // BOUNDS(data): row-major invariant — callers pass r < rows
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

/// Interprocedural: `g.cols()` canonicalises to `g.cols`, which is the
/// symbolic length the `row` summary assigned to `r`.
pub fn row_sum4(g: &Grid, r: usize) -> f32 {
    let row = g.row(r);
    let k_extent = g.cols();
    let k_main = k_extent - k_extent % 4;
    let mut s = 0.0;
    for kb in 0..k_main / 4 {
        let k = kb * 4;
        s += row[k] + row[k + 1] + row[k + 2] + row[k + 3];
    }
    s
}
