//! Tokenizer stress corpus: raw strings, nested comments, `unsafe` tokens
//! inside macro bodies, lifetimes vs char literals. Never compiled — only
//! lexed by the tokenizer fixture tests.

/* outer /* nested block */ still one comment */

macro_rules! sneaky {
    ($e:expr) => {
        unsafe { $e }
    };
}

pub fn strings<'a>(x: &'a str) -> char {
    let _raw = r#"not code: .unwrap() panic! unsafe { Mutex::new }"#;
    let _bytes = br#"also "quoted" bytes"#;
    let _plain = "escaped \" quote and \\ backslash";
    let _quote_char = '\'';
    let _newline = '\n';
    let _exp = 1.5e-3f32;
    let _hex = 0xdead_beef_u64;
    let _range = 0..10;
    let _method = 1.max(2);
    'x'
}
