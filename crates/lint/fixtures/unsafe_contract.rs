//! Lint fixture: seeded violations for the `unsafe-contract` pass.
//! Never compiled — only analyzed (under a non-`crates/par` label).
//!
//! Expected findings: one missing contract, one placeholder, one contract
//! that names nothing it governs, one raw-pointer derivation outside the
//! partition runtime. `well_documented` must NOT fire.

pub fn no_contract(p: *mut f32) {
    unsafe { p.write(1.0) };
}

pub fn placeholder(p: *mut f32) {
    // SAFETY: fine
    unsafe { p.write(1.0) };
}

pub fn names_nothing(q: *mut f32) {
    // SAFETY: every access is valid and exclusive; the partitions are
    // disjoint by construction.
    unsafe { q.write(1.0) };
}

pub fn raw_parts_outside_runtime(base: *mut f32, len: usize) {
    // SAFETY: `base` and `len` delimit an exclusively borrowed, in-bounds
    // buffer owned by the caller for the duration of this call.
    let s = unsafe { std::slice::from_raw_parts_mut(base, len) };
    s.fill(0.0);
}

pub fn well_documented(p: *mut f32) {
    // SAFETY: `p` is valid, in-bounds and exclusively borrowed by this
    // call; no alias of `p` exists while the write runs.
    unsafe { p.write(1.0) };
}
