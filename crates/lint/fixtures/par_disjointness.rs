//! Seeded violation: ad-hoc block ranges fed to the parallel fan-out.
//! This is the static twin of the `san-abuse overlap` mode in
//! `crates/par/src/bin/san_abuse.rs` — hand-built ranges whose
//! disjointness nothing proves. Expected findings under the label
//! `crates/nn/src/fixture.rs`:
//!   1 × par-disjointness (the `parts` vec derives from neither
//!     `split_even`/`split_by_weight` nor a `// DISJOINT:` proof)

pub fn scatter(data: &mut [f32]) {
    let cut = data.len() / 2;
    let parts = vec![0..cut, cut..data.len()];
    par_row_blocks_mut(data, 1, &parts, |_, _, block| block.fill(0.0));
}
