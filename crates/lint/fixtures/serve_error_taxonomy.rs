//! Seeded violation: the serving crate's public API leaking stringly-typed
//! errors instead of `ServeError`/`SnapshotError`. Expected findings under
//! the label `crates/serve/src/fixture.rs`:
//!   2 × error-taxonomy (`Result<_, String>` and `Result<_, Box<dyn Error>>`)

pub fn load_snapshot(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("read snapshot {path}: {e}"))
}

pub fn admit(nodes: &[usize]) -> Result<usize, Box<dyn std::error::Error>> {
    Ok(nodes.len())
}
