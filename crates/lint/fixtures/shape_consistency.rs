//! Seeded `shape-consistency` fixture: a traced-clean product and two
//! dimension mismatches the shape domain must flag.

/// Clean: inner dimensions agree.
pub fn ok_product() {
    let a = DenseMatrix::zeros(2, 3);
    let b = DenseMatrix::zeros(3, 5);
    let _c = a.matmul(&b);
}

/// VIOLATION: `a.cols` is 3 but `b.rows` is 4 at the matmul site.
pub fn bad_product() {
    let a = DenseMatrix::zeros(2, 3);
    let b = DenseMatrix::zeros(4, 5);
    let _c = a.matmul(&b);
}

/// VIOLATION: quantized weights keep their source shape through
/// `QMatrix::quantize`, so the fused GEMM still sees 3 vs 5.
pub fn bad_quantized() {
    let a = DenseMatrix::zeros(2, 3);
    let w = DenseMatrix::zeros(5, 4);
    let qw = QMatrix::quantize(w, Mode::F16);
    let _y = matmul_deq(&a, &qw);
}
