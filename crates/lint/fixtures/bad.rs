//! Lint fixture: a file that must FAIL `amud-lint` in explicit-file mode
//! (zero budgets). Kept out of the workspace scan — `fixtures/` directories
//! are excluded — and exercised by `ci.sh` to prove the harness still bites.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn rogue_thread() {
    std::thread::spawn(|| {});
}
