//! Seeded violation: a panicking helper transitively reachable from a
//! kernel hot path that enters the parallel runtime. Expected findings
//! under the label `crates/nn/src/fixture.rs`:
//!   1 × panic-reachability  (the `.expect` in `factor`, via kernel → scale)
//!   1 × unwrap-ratchet      (the same `.expect`, counted by the per-file pass)

pub fn kernel(data: &mut [f32]) {
    let parts = split_even(data.len(), 4);
    par_row_blocks_mut(data, 1, &parts, |_, _, block| scale(block));
}

fn scale(block: &mut [f32]) {
    let k = factor();
    for v in block.iter_mut() {
        *v *= k;
    }
}

fn factor() -> f32 {
    std::env::args().next().expect("argv0 always present").len() as f32
}
