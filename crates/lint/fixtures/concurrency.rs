//! Lint fixture: seeded violations for the `concurrency-discipline` pass
//! (plus one `raw-thread-spawn`). Never compiled — only analyzed under a
//! label outside `crates/par` and `crates/cache`.
//!
//! Expected findings: `Mutex::new` and `AtomicU64::new` construction, and
//! a raw `thread::spawn`.

use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

pub fn rogue_state() -> (Mutex<Vec<f32>>, AtomicU64) {
    let guarded = Mutex::new(Vec::new());
    let counter = AtomicU64::new(0);
    (guarded, counter)
}

pub fn rogue_thread() {
    std::thread::spawn(|| {});
}
