//! Lint fixture: the quantization crate is governed by both
//! `cache-key-completeness` and `determinism-taint`. Never compiled —
//! only analyzed (under the label `crates/quant/src/fixture.rs`).
//!
//! Expected findings:
//!   1 × cache-key-completeness — `lookup_dropping_scale` omits `scale`
//!     from its store key even though a per-tensor scale changes every
//!     dequantized byte the cached entry would serve.
//!   1 × determinism-taint — an env-var-derived epsilon flows through
//!     `env_epsilon` into tensor contents via `from_vec` in
//!     `dequant_with_env_eps`.
//! `lookup_complete` (full coverage through `let` dataflow) and
//! `lookup_exempted` (justified KEY-EXEMPT) must NOT fire.

pub fn lookup_dropping_scale(w: &DenseMatrix, scale: f32, precision: u32) -> Option<Thing> {
    let fp = fingerprint_dense(w);
    let key = (fp, precision);
    quant_store().get(&key)
}

pub fn lookup_complete(w: &DenseMatrix, scale: f32, precision: u32) -> Option<Thing> {
    let fp = fingerprint_dense(w);
    let key = (fp, scale.to_bits(), precision);
    quant_store().get(&key)
}

pub fn lookup_exempted(w: &DenseMatrix, reps: usize) -> Option<Thing> {
    // KEY-EXEMPT(reps): benchmark repetition count — affects timing only,
    // never the quantized payload the cached entry serves.
    let key = fingerprint_dense(w);
    quant_store().get(&key)
}

pub fn env_epsilon() -> f32 {
    match std::env::var("QUANT_EPS") {
        Ok(v) => v.len() as f32,
        Err(_) => 0.0,
    }
}

pub fn dequant_with_env_eps(q: &[i8], scale: f32) -> DenseMatrix {
    let eps = env_epsilon();
    let vals: Vec<f32> = q.iter().map(|&b| b as f32 * scale + eps).collect();
    DenseMatrix::from_vec(q.len(), 1, vals)
}
