//! Lint fixture: seeded violations for the `float-determinism` pass.
//! Never compiled — only analyzed (under a non-`crates/par` label).
//!
//! Expected findings inside the `par_row_blocks_mut` closure: an iterator
//! `.sum`, an iterator `.fold`, and a bare-identifier `+=` accumulation.
//! The deref-LHS update `*o += …` and the serial `.sum` must NOT fire.
//! A hand-rolled `[f32; 8]` lane-accumulator fold fires anywhere in the
//! file, even outside a par closure; an integer histogram must NOT.

pub fn bad_reductions(data: &mut [f32], parts: &[std::ops::Range<usize>]) {
    amud_par::par_row_blocks_mut(data, 4, parts, |_, rows, block| {
        let total = block.iter().sum::<f32>();
        let folded = block.iter().fold(0.0f32, |a, b| a + b);
        let mut acc = 0.0f32;
        for &v in block.iter() {
            acc += v;
        }
        for (o, r) in block.iter_mut().zip(rows) {
            *o += (r as f32) + total + folded + acc;
        }
    });
}

pub fn serial_sum_is_fine(xs: &[f32]) -> f32 {
    xs.iter().sum()
}

pub fn raw_lane_accumulator(xs: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    for (i, &v) in xs.iter().enumerate() {
        lanes[i % 8] += v;
    }
    lanes.iter().sum()
}

pub fn integer_histogram_is_fine(xs: &[u8]) -> [u32; 4] {
    let mut counts = [0u32; 4];
    for &v in xs {
        counts[(v % 4) as usize] += 1;
    }
    counts
}
