//! Seeded violation: non-deterministic sources flowing interprocedurally
//! into determinism-sensitive sinks. Expected findings under the label
//! `crates/train/src/fixture.rs`:
//!   2 × determinism-taint
//!     - wall-clock taint from `jitter` reaching an `ordered_sum` input
//!     - env-var taint reaching the data argument of `from_vec`

pub fn jitter() -> f32 {
    let t = std::time::Instant::now().elapsed().as_nanos() as f32;
    t * 1e-9
}

pub fn accumulate(xs: &[f32]) -> f32 {
    let bias = jitter();
    let noisy: Vec<f32> = xs.iter().map(|x| x + bias).collect();
    ordered_sum(&noisy)
}

pub fn seed_matrix(n: usize) -> DenseMatrix {
    let eps = match std::env::var("FIXTURE_EPS") {
        Ok(v) => v.len() as f32,
        Err(_) => 0.0,
    };
    DenseMatrix::from_vec(n, 1, vec![eps; n])
}
