//! The data bundle consumed by every model.

use crate::error::TrainError;
use amud_graph::{CsrMatrix, DiGraph};
use amud_nn::DenseMatrix;
use std::rc::Rc;

/// Everything a node-classification model needs: the (possibly directed)
/// adjacency, node features, labels and the semi-supervised split.
///
/// `adj` is the raw binary adjacency without self-loops; each model derives
/// its own normalised operators from it at construction time (decoupled
/// pre-processing, Sec. IV-D).
#[derive(Debug, Clone)]
pub struct GraphData {
    pub adj: CsrMatrix,
    pub features: DenseMatrix,
    pub labels: Rc<Vec<usize>>,
    pub n_classes: usize,
    pub train: Rc<Vec<usize>>,
    pub val: Rc<Vec<usize>>,
    pub test: Rc<Vec<usize>>,
}

impl GraphData {
    /// Assembles the bundle from parts, validating shapes, labels, and
    /// split indices. Every inconsistency is a typed
    /// [`TrainError::BadInput`] — never a panic.
    pub fn new(
        graph: &DiGraph,
        features: DenseMatrix,
        train: Vec<usize>,
        val: Vec<usize>,
        test: Vec<usize>,
    ) -> Result<Self, TrainError> {
        let n = graph.n_nodes();
        if features.rows() != n {
            return Err(TrainError::bad_input(format!(
                "feature rows {} must equal node count {n}",
                features.rows()
            )));
        }
        let labels = graph
            .labels()
            .ok_or_else(|| TrainError::bad_input("GraphData requires labelled graphs"))?
            .to_vec();
        let n_classes = graph.n_classes();
        if let Some(&y) = labels.iter().find(|&&y| y >= n_classes) {
            return Err(TrainError::bad_input(format!(
                "label {y} out of range for {n_classes} classes"
            )));
        }
        if train.is_empty() {
            return Err(TrainError::bad_input("training set must not be empty"));
        }
        for (name, ids) in [("train", &train), ("val", &val), ("test", &test)] {
            if let Some(&v) = ids.iter().find(|&&v| v >= n) {
                return Err(TrainError::bad_input(format!(
                    "{name} split references node {v}, but the graph has {n} nodes"
                )));
            }
        }
        if !features.as_slice().iter().all(|x| x.is_finite()) {
            return Err(TrainError::bad_input("features contain non-finite values"));
        }
        Ok(Self {
            adj: graph.adjacency().clone(),
            features,
            labels: Rc::new(labels),
            n_classes,
            train: Rc::new(train),
            val: Rc::new(val),
            test: Rc::new(test),
        })
    }

    pub fn n_nodes(&self) -> usize {
        self.adj.n_rows()
    }

    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// The coarse undirected transformation of the bundle.
    pub fn to_undirected(&self) -> GraphData {
        let adj = match self.adj.bool_union(&self.adj.transpose()) {
            Ok(adj) => adj,
            // A square matrix always shares its transpose's shape.
            Err(_) => unreachable!("A and Aᵀ share a shape by construction"),
        };
        GraphData { adj, ..self.clone() }
    }

    /// Whether the stored adjacency is symmetric.
    pub fn is_undirected(&self) -> bool {
        self.adj.same_pattern(&self.adj.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_graph::DiGraph;

    fn toy() -> GraphData {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)])
            .unwrap()
            .with_labels(vec![0, 1, 0, 1], 2)
            .unwrap();
        let x = DenseMatrix::ones(4, 3);
        GraphData::new(&g, x, vec![0, 1], vec![2], vec![3]).unwrap()
    }

    #[test]
    fn bundle_shapes() {
        let d = toy();
        assert_eq!(d.n_nodes(), 4);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.n_classes, 2);
    }

    #[test]
    fn undirected_view() {
        let d = toy();
        assert!(!d.is_undirected());
        let u = d.to_undirected();
        assert!(u.is_undirected());
        assert_eq!(u.adj.nnz(), 6);
    }

    #[test]
    fn empty_train_rejected() {
        let g = DiGraph::from_edges(2, vec![(0, 1)]).unwrap().with_labels(vec![0, 1], 2).unwrap();
        let err = GraphData::new(&g, DenseMatrix::ones(2, 1), vec![], vec![0], vec![1]);
        assert!(matches!(err, Err(crate::TrainError::BadInput { .. })), "{err:?}");
    }

    #[test]
    fn out_of_range_split_rejected() {
        let g = DiGraph::from_edges(2, vec![(0, 1)]).unwrap().with_labels(vec![0, 1], 2).unwrap();
        let err = GraphData::new(&g, DenseMatrix::ones(2, 1), vec![0], vec![1], vec![99]);
        match err {
            Err(crate::TrainError::BadInput { reason }) => {
                assert!(reason.contains("test split"), "{reason}")
            }
            other => panic!("expected BadInput, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_features_rejected() {
        let g = DiGraph::from_edges(2, vec![(0, 1)]).unwrap().with_labels(vec![0, 1], 2).unwrap();
        let mut x = DenseMatrix::ones(2, 1);
        x.as_mut_slice()[0] = f32::NAN;
        let err = GraphData::new(&g, x, vec![0], vec![1], vec![]);
        assert!(matches!(err, Err(crate::TrainError::BadInput { .. })), "{err:?}");
    }
}
