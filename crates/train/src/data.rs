//! The data bundle consumed by every model.

use amud_graph::{CsrMatrix, DiGraph};
use amud_nn::DenseMatrix;
use std::rc::Rc;

/// Everything a node-classification model needs: the (possibly directed)
/// adjacency, node features, labels and the semi-supervised split.
///
/// `adj` is the raw binary adjacency without self-loops; each model derives
/// its own normalised operators from it at construction time (decoupled
/// pre-processing, Sec. IV-D).
#[derive(Debug, Clone)]
pub struct GraphData {
    pub adj: CsrMatrix,
    pub features: DenseMatrix,
    pub labels: Rc<Vec<usize>>,
    pub n_classes: usize,
    pub train: Rc<Vec<usize>>,
    pub val: Rc<Vec<usize>>,
    pub test: Rc<Vec<usize>>,
}

impl GraphData {
    /// Assembles the bundle from parts, validating shapes.
    ///
    /// # Panics
    /// Panics on inconsistent node counts.
    pub fn new(
        graph: &DiGraph,
        features: DenseMatrix,
        train: Vec<usize>,
        val: Vec<usize>,
        test: Vec<usize>,
    ) -> Self {
        let n = graph.n_nodes();
        assert_eq!(features.rows(), n, "feature rows must equal node count");
        let labels = graph.labels().expect("GraphData requires labelled graphs").to_vec();
        assert!(!train.is_empty(), "training set must not be empty");
        Self {
            adj: graph.adjacency().clone(),
            features,
            labels: Rc::new(labels),
            n_classes: graph.n_classes(),
            train: Rc::new(train),
            val: Rc::new(val),
            test: Rc::new(test),
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.adj.n_rows()
    }

    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// The coarse undirected transformation of the bundle.
    pub fn to_undirected(&self) -> GraphData {
        let adj = self.adj.bool_union(&self.adj.transpose()).expect("A and Aᵀ share a shape");
        GraphData { adj, ..self.clone() }
    }

    /// Whether the stored adjacency is symmetric.
    pub fn is_undirected(&self) -> bool {
        self.adj.same_pattern(&self.adj.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_graph::DiGraph;

    fn toy() -> GraphData {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)])
            .unwrap()
            .with_labels(vec![0, 1, 0, 1], 2)
            .unwrap();
        let x = DenseMatrix::ones(4, 3);
        GraphData::new(&g, x, vec![0, 1], vec![2], vec![3])
    }

    #[test]
    fn bundle_shapes() {
        let d = toy();
        assert_eq!(d.n_nodes(), 4);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.n_classes, 2);
    }

    #[test]
    fn undirected_view() {
        let d = toy();
        assert!(!d.is_undirected());
        let u = d.to_undirected();
        assert!(u.is_undirected());
        assert_eq!(u.adj.nnz(), 6);
    }

    #[test]
    #[should_panic(expected = "training set must not be empty")]
    fn empty_train_rejected() {
        let g = DiGraph::from_edges(2, vec![(0, 1)]).unwrap().with_labels(vec![0, 1], 2).unwrap();
        let _ = GraphData::new(&g, DenseMatrix::ones(2, 1), vec![], vec![0], vec![1]);
    }
}
