//! Training loop with early stopping, seeded repeats, and divergence
//! recovery (DESIGN.md §8).
//!
//! Every epoch runs under a numerical-health monitor: the training loss
//! must stay finite and the raw (pre-clip) gradient norm must stay under
//! [`TrainConfig::grad_limit`]. On a violation the trainer rolls the
//! parameters back to the last good snapshot (taken at each best-val
//! epoch), backs off the learning rate by [`TrainConfig::lr_backoff`],
//! and retries — up to [`TrainConfig::max_retries`] times before
//! reporting a typed [`TrainError`] instead of panicking. [`repeat_runs`]
//! degrades gracefully: diverged seeds land in a failure manifest while
//! the surviving seeds still produce a [`Summary`].

use crate::data::GraphData;
use crate::error::TrainError;
use crate::faults::FaultPlan;
use crate::metrics::{accuracy, Summary};
use crate::model::Model;
use amud_nn::verify::{has_errors, render, Diagnostic, TapeVerifier};
use amud_nn::{Adam, ParamBank, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;
use std::time::Instant;

/// Hyperparameters of the training loop, including the recovery policy.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    /// Early stopping: stop after this many epochs without a new best
    /// validation accuracy. `0` disables early stopping.
    pub patience: usize,
    pub lr: f32,
    pub weight_decay: f32,
    /// Divergence recovery: snapshot rollbacks allowed before the run is
    /// reported as failed. `0` fails on the first violation.
    pub max_retries: usize,
    /// Learning-rate multiplier applied at each recovery (must be in
    /// `(0, 1]`).
    pub lr_backoff: f32,
    /// Gradient-norm watchdog: a raw (pre-clip) global gradient norm above
    /// this triggers recovery. Non-finite norms always trigger it.
    pub grad_limit: f32,
    /// Wall-clock budget in seconds; `0.0` disables the timeout.
    pub max_seconds: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            patience: 30,
            lr: 0.01,
            weight_decay: 5e-4,
            max_retries: 2,
            lr_backoff: 0.5,
            grad_limit: 1e4,
            max_seconds: 0.0,
        }
    }
}

impl TrainConfig {
    /// Validates the configuration itself (the trainer calls this before
    /// spending any epochs).
    fn validate(&self) -> Result<(), TrainError> {
        if self.epochs == 0 {
            return Err(TrainError::bad_input("epochs must be >= 1"));
        }
        if !self.lr.is_finite() || self.lr <= 0.0 {
            return Err(TrainError::bad_input(format!("learning rate {} must be > 0", self.lr)));
        }
        if !self.lr_backoff.is_finite() || self.lr_backoff <= 0.0 || self.lr_backoff > 1.0 {
            return Err(TrainError::bad_input(format!(
                "lr_backoff {} must lie in (0, 1]",
                self.lr_backoff
            )));
        }
        if self.grad_limit <= 0.0 {
            return Err(TrainError::bad_input(format!(
                "grad_limit {} must be > 0",
                self.grad_limit
            )));
        }
        Ok(())
    }
}

/// One epoch's record for training-dynamics plots (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainCurve {
    pub epoch: usize,
    pub train_loss: f64,
    pub val_acc: f64,
    pub test_acc: f64,
}

/// What tripped the numerical-health monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthViolation {
    /// The training loss was NaN/±Inf, or the gradients carried NaN/±Inf.
    NonFiniteLoss,
    /// The raw gradient norm exceeded [`TrainConfig::grad_limit`].
    GradientExplosion { norm: f32 },
}

/// One recovery the trainer performed mid-run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Epoch at which the violation was detected.
    pub epoch: usize,
    /// What the monitor saw.
    pub cause: HealthViolation,
    /// Epoch whose parameter snapshot was restored (`0` = initial params).
    pub restored_epoch: usize,
    /// Learning rate in effect after the backoff.
    pub new_lr: f32,
}

/// The run's recovery history (empty on a healthy run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryReport {
    /// Number of rollbacks performed.
    pub fn retries(&self) -> usize {
        self.events.len()
    }
}

/// Outcome of a single training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Best validation accuracy observed.
    pub best_val_acc: f64,
    /// Test accuracy at the best-validation epoch (the reported metric).
    pub test_acc: f64,
    /// Epochs actually run (≤ config.epochs with early stopping).
    pub epochs_run: usize,
    /// Per-epoch curve (empty unless `train_with_curve` is used).
    pub curve: Vec<TrainCurve>,
    /// Divergence recoveries performed during the run.
    pub recovery: RecoveryReport,
    /// Kernel thread budget the run executed under (`AMUD_THREADS`).
    /// Informational only: results are bit-identical at any value.
    pub threads: usize,
    /// Process-wide precompute-cache counters at the end of the run
    /// (cumulative — compare two results' snapshots with
    /// [`amud_cache::CacheStats::delta`] to attribute activity). Like
    /// `threads`, informational only: cached and uncached runs are
    /// bit-identical.
    pub cache: amud_cache::CacheStats,
}

/// Trains `model` on `data`, returning the test accuracy at the epoch of
/// best validation accuracy, or a typed [`TrainError`] when the run is
/// unrecoverable (never a panic).
pub fn train(
    model: &mut dyn Model,
    data: &GraphData,
    cfg: TrainConfig,
    seed: u64,
) -> Result<TrainResult, TrainError> {
    train_inner(model, data, cfg, seed, false, None)
}

/// Like [`train`] but records the full per-epoch curve (used by Fig. 5).
pub fn train_with_curve(
    model: &mut dyn Model,
    data: &GraphData,
    cfg: TrainConfig,
    seed: u64,
) -> Result<TrainResult, TrainError> {
    train_inner(model, data, cfg, seed, true, None)
}

/// Like [`train`] but injects the faults scheduled in `plan` — the
/// deterministic fault-injection harness entry point (DESIGN.md §8.3).
pub fn train_with_faults(
    model: &mut dyn Model,
    data: &GraphData,
    cfg: TrainConfig,
    seed: u64,
    plan: &FaultPlan,
) -> Result<TrainResult, TrainError> {
    train_inner(model, data, cfg, seed, false, Some(plan))
}

/// Records one evaluation-mode forward pass (plus the training loss) and
/// statically verifies the resulting op graph — shape inference, gradient
/// reachability of every parameter, dangling nodes. Returns the verifier's
/// findings; an empty vector means the graph is clean.
pub fn verify_model(model: &dyn Model, data: &GraphData, seed: u64) -> Vec<Diagnostic> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tape = Tape::new();
    let logits = model.forward(&mut tape, data, false, &mut rng);
    let loss = tape.masked_cross_entropy(logits, Rc::clone(&data.labels), Rc::clone(&data.train));
    TapeVerifier::new().verify(&tape, loss)
}

fn train_inner(
    model: &mut dyn Model,
    data: &GraphData,
    cfg: TrainConfig,
    seed: u64,
    record_curve: bool,
    faults: Option<&FaultPlan>,
) -> Result<TrainResult, TrainError> {
    cfg.validate()?;

    // Mandatory pre-flight: statically verify the op graph the model
    // records before spending any epochs on it. Uses its own RNG so the
    // training stream below is unchanged.
    let preflight = verify_model(model, data, seed);
    if has_errors(&preflight) {
        return Err(TrainError::VerifierRejected {
            model: model.name().to_string(),
            report: render(&preflight),
        });
    }

    // TAINT-PURE(started): wall-clock only drives the timeout check and
    // the wall-seconds reporting field, never any trained value.
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lr = cfg.lr;
    let mut adam = Adam::new(lr).with_weight_decay(cfg.weight_decay).with_clip_norm(5.0);
    let labels = Rc::clone(&data.labels);
    let train_mask = Rc::clone(&data.train);

    // Last-good checkpoint: the initial parameters until the first
    // best-val epoch replaces them.
    let mut snapshot: (ParamBank, usize) = (model.bank().clone(), 0);
    let mut recovery = RecoveryReport::default();

    let mut best_val = f64::NEG_INFINITY;
    let mut test_at_best = 0.0f64;
    let mut since_best = 0usize;
    let mut curve = Vec::new();
    let mut epochs_run = 0usize;

    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        if cfg.max_seconds > 0.0 {
            let elapsed = started.elapsed().as_secs_f64();
            if elapsed > cfg.max_seconds {
                return Err(TrainError::Timeout {
                    epoch,
                    elapsed_secs: elapsed,
                    limit_secs: cfg.max_seconds,
                });
            }
        }

        // --- optimisation step (gradients land in the bank, update held
        //     back until the health monitor clears the epoch) ---
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, data, true, &mut rng);
        let loss = tape.masked_cross_entropy(logits, Rc::clone(&labels), Rc::clone(&train_mask));
        let mut train_loss = tape.value(loss).get(0, 0) as f64;
        tape.backward(loss);
        tape.apply_grads(model.bank_mut());

        // --- fault injection (deterministic, epoch-addressed) ---
        if let Some(plan) = faults {
            if plan.nan_loss_at(epoch) {
                train_loss = f64::NAN;
                model.bank_mut().scale_grads(f32::NAN);
            }
            let factor = plan.grad_factor_at(epoch);
            if factor != 1.0 {
                model.bank_mut().scale_grads(factor);
            }
        }

        // --- numerical-health monitor ---
        let grad_norm = model.bank().grad_norm();
        let violation = if !train_loss.is_finite() || !grad_norm.is_finite() {
            Some(HealthViolation::NonFiniteLoss)
        } else if grad_norm > cfg.grad_limit {
            Some(HealthViolation::GradientExplosion { norm: grad_norm })
        } else {
            None
        };

        if let Some(cause) = violation {
            model.bank_mut().zero_grads();
            if recovery.retries() >= cfg.max_retries {
                return Err(match cause {
                    HealthViolation::NonFiniteLoss => {
                        TrainError::NonFiniteLoss { epoch, retries: recovery.retries() }
                    }
                    HealthViolation::GradientExplosion { norm } => TrainError::GradientExplosion {
                        epoch,
                        norm,
                        limit: cfg.grad_limit,
                        retries: recovery.retries(),
                    },
                });
            }
            // Roll back to the last good parameters, back off the learning
            // rate, and restart the optimiser state (stale Adam moments
            // would re-apply the diverged direction).
            *model.bank_mut() = snapshot.0.clone();
            lr *= cfg.lr_backoff;
            adam = Adam::new(lr).with_weight_decay(cfg.weight_decay).with_clip_norm(5.0);
            recovery.events.push(RecoveryEvent {
                epoch,
                cause,
                restored_epoch: snapshot.1,
                new_lr: lr,
            });
            continue;
        }

        adam.step(model.bank_mut());

        // --- evaluation ---
        let mut eval_tape = Tape::new();
        let eval_logits = model.forward(&mut eval_tape, data, false, &mut rng);
        let logit_values = eval_tape.value(eval_logits);
        let val_acc = accuracy(logit_values, &labels, &data.val);
        let test_acc = accuracy(logit_values, &labels, &data.test);

        if record_curve {
            curve.push(TrainCurve { epoch, train_loss, val_acc, test_acc });
        }

        if val_acc > best_val {
            best_val = val_acc;
            test_at_best = test_acc;
            since_best = 0;
            snapshot = (model.bank().clone(), epoch + 1);
        } else {
            // Validation accuracy is coarse on small splits; on a tie keep
            // the most-trained snapshot rather than freezing on the first
            // epoch that reached the plateau. Ties do not reset patience.
            if val_acc == best_val {
                test_at_best = test_acc;
                snapshot = (model.bank().clone(), epoch + 1);
            }
            since_best += 1;
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
        }
    }

    Ok(TrainResult {
        best_val_acc: best_val,
        test_acc: test_at_best,
        epochs_run,
        curve,
        recovery,
        threads: amud_par::current_threads(),
        cache: amud_cache::stats(),
    })
}

/// One seed's failure inside a repeated run (the failure manifest entry).
#[derive(Debug, Clone, PartialEq)]
pub struct SeedFailure {
    pub seed: u64,
    pub error: TrainError,
}

/// The outcome of repeated seeded runs of one model on one dataset.
/// Diverged seeds are recorded in `failures` instead of aborting the
/// sweep; `summary` covers the successful runs only (with the failure
/// count carried in [`Summary::n_failed`]).
#[derive(Debug, Clone)]
pub struct RepeatOutcome {
    pub summary: Summary,
    pub results: Vec<TrainResult>,
    pub failures: Vec<SeedFailure>,
}

/// Runs `build` → train `repeats` times with seeds `base_seed + i` and
/// summarises test accuracy — the tables' `mean±std` protocol. A seed
/// whose *construction* or run fails lands in the failure manifest; the
/// summary covers the seeds that survived. Builders are fallible because
/// model construction now includes operator materialisation and feature
/// propagation, which reject malformed inputs with typed errors instead of
/// aborting the sweep.
pub fn repeat_runs<M: Model>(
    build: impl FnMut(u64) -> Result<M, TrainError>,
    data: &GraphData,
    cfg: TrainConfig,
    repeats: usize,
    base_seed: u64,
) -> RepeatOutcome {
    repeat_runs_with_faults(build, data, cfg, repeats, base_seed, |_| FaultPlan::new())
}

/// [`repeat_runs`] with a per-seed fault schedule — the harness used by
/// the fault-injection suite to prove one diverged seed degrades the
/// sweep gracefully instead of destroying it.
pub fn repeat_runs_with_faults<M: Model>(
    mut build: impl FnMut(u64) -> Result<M, TrainError>,
    data: &GraphData,
    cfg: TrainConfig,
    repeats: usize,
    base_seed: u64,
    mut fault_for_seed: impl FnMut(u64) -> FaultPlan,
) -> RepeatOutcome {
    let mut results = Vec::with_capacity(repeats);
    let mut failures = Vec::new();
    for i in 0..repeats {
        let seed = base_seed + i as u64;
        let mut model = match build(seed) {
            Ok(m) => m,
            Err(error) => {
                failures.push(SeedFailure { seed, error });
                continue;
            }
        };
        let plan = fault_for_seed(seed);
        let run = if plan.is_empty() {
            train(&mut model, data, cfg, seed)
        } else {
            train_with_faults(&mut model, data, cfg, seed, &plan)
        };
        match run {
            Ok(result) => results.push(result),
            Err(error) => failures.push(SeedFailure { seed, error }),
        }
    }
    let summary =
        Summary::from_outcomes(results.iter().map(|r| r.test_acc).collect(), failures.len());
    RepeatOutcome { summary, results, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Fault;
    use amud_graph::DiGraph;
    use amud_nn::{Activation, DenseMatrix, Mlp, NodeId, ParamBank};

    /// A plain MLP over node features — the simplest possible Model.
    struct MlpModel {
        bank: ParamBank,
        mlp: Mlp,
    }

    impl MlpModel {
        fn new(data: &GraphData, seed: u64) -> Self {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut bank = ParamBank::new();
            let mlp = Mlp::new(
                &mut bank,
                &[data.n_features(), 16, data.n_classes],
                Activation::Relu,
                0.0,
                &mut rng,
            );
            Self { bank, mlp }
        }
    }

    impl Model for MlpModel {
        fn bank(&self) -> &ParamBank {
            &self.bank
        }
        fn bank_mut(&mut self) -> &mut ParamBank {
            &mut self.bank
        }
        fn forward(
            &self,
            tape: &mut Tape,
            data: &GraphData,
            training: bool,
            rng: &mut StdRng,
        ) -> NodeId {
            let x = tape.constant(data.features.clone());
            self.mlp.forward(tape, &self.bank, x, training, rng)
        }
        fn name(&self) -> &'static str {
            "MLP"
        }
    }

    /// Separable toy data: features are the one-hot label plus noise.
    fn toy_data(seed: u64) -> GraphData {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let n = 120;
        let labels: Vec<usize> = (0..n).map(|v| v % 3).collect();
        let g =
            DiGraph::from_edges(n, vec![(0, 1)]).unwrap().with_labels(labels.clone(), 3).unwrap();
        let x = DenseMatrix::from_fn(n, 3, |r, c| {
            let base = if labels[r] == c { 1.0 } else { 0.0 };
            base + 0.3 * rng.gen::<f32>()
        });
        let train: Vec<usize> = (0..60).collect();
        let val: Vec<usize> = (60..90).collect();
        let test: Vec<usize> = (90..n).collect();
        GraphData::new(&g, x, train, val, test).unwrap()
    }

    fn quick(epochs: usize) -> TrainConfig {
        TrainConfig { epochs, patience: 0, lr: 0.01, weight_decay: 0.0, ..Default::default() }
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_data() {
        let data = toy_data(0);
        let mut model = MlpModel::new(&data, 1);
        let result = train(&mut model, &data, quick(150), 1).unwrap();
        assert!(result.test_acc > 0.9, "test accuracy {}", result.test_acc);
        assert_eq!(result.epochs_run, 150);
        assert!(result.recovery.events.is_empty());
    }

    #[test]
    fn early_stopping_halts_before_max() {
        let data = toy_data(0);
        let mut model = MlpModel::new(&data, 1);
        let cfg = TrainConfig { patience: 10, ..quick(500) };
        let result = train(&mut model, &data, cfg, 1).unwrap();
        assert!(result.epochs_run < 500, "early stopping never fired");
    }

    #[test]
    fn curves_are_recorded_and_loss_decreases() {
        let data = toy_data(0);
        let mut model = MlpModel::new(&data, 2);
        let result = train_with_curve(&mut model, &data, quick(60), 2).unwrap();
        assert_eq!(result.curve.len(), 60);
        let first = result.curve.first().unwrap().train_loss;
        let last = result.curve.last().unwrap().train_loss;
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let data = toy_data(3);
        let cfg = quick(30);
        let r1 = train(&mut MlpModel::new(&data, 7), &data, cfg, 7).unwrap();
        let r2 = train(&mut MlpModel::new(&data, 7), &data, cfg, 7).unwrap();
        assert_eq!(r1.test_acc, r2.test_acc);
        assert_eq!(r1.best_val_acc, r2.best_val_acc);
    }

    #[test]
    fn repeat_runs_summarises() {
        let data = toy_data(4);
        let out = repeat_runs(|seed| Ok(MlpModel::new(&data, seed)), &data, quick(40), 3, 100);
        assert_eq!(out.results.len(), 3);
        assert!(out.failures.is_empty());
        assert!(out.summary.mean > 0.8);
    }

    #[test]
    fn invalid_config_is_bad_input() {
        let data = toy_data(0);
        let mut model = MlpModel::new(&data, 1);
        let cfg = TrainConfig { lr: -1.0, ..TrainConfig::default() };
        match train(&mut model, &data, cfg, 1) {
            Err(TrainError::BadInput { .. }) => {}
            other => panic!("expected BadInput, got {other:?}"),
        }
    }

    #[test]
    fn injected_nan_loss_is_recovered() {
        let data = toy_data(5);
        let mut model = MlpModel::new(&data, 1);
        let plan = FaultPlan::new().with(Fault::NanLoss { epoch: 10 });
        let result = train_with_faults(&mut model, &data, quick(80), 1, &plan).unwrap();
        assert_eq!(result.recovery.retries(), 1);
        assert_eq!(result.recovery.events[0].epoch, 10);
        assert!(result.test_acc > 0.9, "recovered run must still learn: {}", result.test_acc);
    }

    #[test]
    fn timeout_is_typed() {
        let data = toy_data(0);
        let mut model = MlpModel::new(&data, 1);
        let cfg = TrainConfig { max_seconds: 1e-9, ..quick(50) };
        match train(&mut model, &data, cfg, 1) {
            Err(TrainError::Timeout { .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}
