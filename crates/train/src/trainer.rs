//! Training loop with early stopping and seeded repeats.

use crate::data::GraphData;
use crate::metrics::{accuracy, Summary};
use crate::model::Model;
use amud_nn::verify::{has_errors, render, Diagnostic, TapeVerifier};
use amud_nn::{Adam, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Hyperparameters of the training loop.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    /// Early stopping: stop after this many epochs without a new best
    /// validation accuracy. `0` disables early stopping.
    pub patience: usize,
    pub lr: f32,
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 200, patience: 30, lr: 0.01, weight_decay: 5e-4 }
    }
}

/// One epoch's record for training-dynamics plots (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainCurve {
    pub epoch: usize,
    pub train_loss: f64,
    pub val_acc: f64,
    pub test_acc: f64,
}

/// Outcome of a single training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Best validation accuracy observed.
    pub best_val_acc: f64,
    /// Test accuracy at the best-validation epoch (the reported metric).
    pub test_acc: f64,
    /// Epochs actually run (≤ config.epochs with early stopping).
    pub epochs_run: usize,
    /// Per-epoch curve (empty unless `train_with_curve` is used).
    pub curve: Vec<TrainCurve>,
}

/// Trains `model` on `data`, returning the test accuracy at the epoch of
/// best validation accuracy.
pub fn train(model: &mut dyn Model, data: &GraphData, cfg: TrainConfig, seed: u64) -> TrainResult {
    train_inner(model, data, cfg, seed, false)
}

/// Like [`train`] but records the full per-epoch curve (used by Fig. 5).
pub fn train_with_curve(
    model: &mut dyn Model,
    data: &GraphData,
    cfg: TrainConfig,
    seed: u64,
) -> TrainResult {
    train_inner(model, data, cfg, seed, true)
}

/// Records one evaluation-mode forward pass (plus the training loss) and
/// statically verifies the resulting op graph — shape inference, gradient
/// reachability of every parameter, dangling nodes. Returns the verifier's
/// findings; an empty vector means the graph is clean.
pub fn verify_model(model: &dyn Model, data: &GraphData, seed: u64) -> Vec<Diagnostic> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tape = Tape::new();
    let logits = model.forward(&mut tape, data, false, &mut rng);
    let loss = tape.masked_cross_entropy(logits, Rc::clone(&data.labels), Rc::clone(&data.train));
    TapeVerifier::new().verify(&tape, loss)
}

fn train_inner(
    model: &mut dyn Model,
    data: &GraphData,
    cfg: TrainConfig,
    seed: u64,
    record_curve: bool,
) -> TrainResult {
    // Mandatory pre-flight: statically verify the op graph the model
    // records before spending any epochs on it. Uses its own RNG so the
    // training stream below is unchanged.
    let preflight = verify_model(model, data, seed);
    if has_errors(&preflight) {
        panic!(
            "tape verification failed for {} before training:\n{}",
            model.name(),
            render(&preflight)
        );
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut adam = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay).with_clip_norm(5.0);
    let labels = Rc::clone(&data.labels);
    let train_mask = Rc::clone(&data.train);

    let mut best_val = f64::NEG_INFINITY;
    let mut test_at_best = 0.0f64;
    let mut since_best = 0usize;
    let mut curve = Vec::new();
    let mut epochs_run = 0usize;

    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        // --- optimisation step ---
        let mut tape = Tape::new();
        let logits = model.forward(&mut tape, data, true, &mut rng);
        let loss = tape.masked_cross_entropy(logits, Rc::clone(&labels), Rc::clone(&train_mask));
        let train_loss = tape.value(loss).get(0, 0) as f64;
        tape.backward(loss);
        tape.apply_grads(model.bank_mut());
        adam.step(model.bank_mut());

        // --- evaluation ---
        let mut eval_tape = Tape::new();
        let eval_logits = model.forward(&mut eval_tape, data, false, &mut rng);
        let logit_values = eval_tape.value(eval_logits);
        let val_acc = accuracy(logit_values, &labels, &data.val);
        let test_acc = accuracy(logit_values, &labels, &data.test);

        if record_curve {
            curve.push(TrainCurve { epoch, train_loss, val_acc, test_acc });
        }

        if val_acc > best_val {
            best_val = val_acc;
            test_at_best = test_acc;
            since_best = 0;
        } else {
            // Validation accuracy is coarse on small splits; on a tie keep
            // the most-trained snapshot rather than freezing on the first
            // epoch that reached the plateau. Ties do not reset patience.
            if val_acc == best_val {
                test_at_best = test_acc;
            }
            since_best += 1;
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
        }
    }

    TrainResult { best_val_acc: best_val, test_acc: test_at_best, epochs_run, curve }
}

/// The outcome of repeated seeded runs of one model on one dataset.
#[derive(Debug, Clone)]
pub struct RepeatOutcome {
    pub summary: Summary,
    pub results: Vec<TrainResult>,
}

/// Runs `build` → train `repeats` times with seeds `base_seed + i` and
/// summarises test accuracy — the tables' `mean±std` protocol.
pub fn repeat_runs<M: Model>(
    mut build: impl FnMut(u64) -> M,
    data: &GraphData,
    cfg: TrainConfig,
    repeats: usize,
    base_seed: u64,
) -> RepeatOutcome {
    assert!(repeats >= 1, "need at least one repeat");
    let mut results = Vec::with_capacity(repeats);
    for i in 0..repeats {
        let seed = base_seed + i as u64;
        let mut model = build(seed);
        results.push(train(&mut model, data, cfg, seed));
    }
    let summary = Summary::from_runs(results.iter().map(|r| r.test_acc).collect());
    RepeatOutcome { summary, results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_graph::DiGraph;
    use amud_nn::{Activation, DenseMatrix, Mlp, NodeId, ParamBank};

    /// A plain MLP over node features — the simplest possible Model.
    struct MlpModel {
        bank: ParamBank,
        mlp: Mlp,
    }

    impl MlpModel {
        fn new(data: &GraphData, seed: u64) -> Self {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut bank = ParamBank::new();
            let mlp = Mlp::new(
                &mut bank,
                &[data.n_features(), 16, data.n_classes],
                Activation::Relu,
                0.0,
                &mut rng,
            );
            Self { bank, mlp }
        }
    }

    impl Model for MlpModel {
        fn bank(&self) -> &ParamBank {
            &self.bank
        }
        fn bank_mut(&mut self) -> &mut ParamBank {
            &mut self.bank
        }
        fn forward(
            &self,
            tape: &mut Tape,
            data: &GraphData,
            training: bool,
            rng: &mut StdRng,
        ) -> NodeId {
            let x = tape.constant(data.features.clone());
            self.mlp.forward(tape, &self.bank, x, training, rng)
        }
        fn name(&self) -> &'static str {
            "MLP"
        }
    }

    /// Separable toy data: features are the one-hot label plus noise.
    fn toy_data(seed: u64) -> GraphData {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let n = 120;
        let labels: Vec<usize> = (0..n).map(|v| v % 3).collect();
        let g =
            DiGraph::from_edges(n, vec![(0, 1)]).unwrap().with_labels(labels.clone(), 3).unwrap();
        let x = DenseMatrix::from_fn(n, 3, |r, c| {
            let base = if labels[r] == c { 1.0 } else { 0.0 };
            base + 0.3 * rng.gen::<f32>()
        });
        let train: Vec<usize> = (0..60).collect();
        let val: Vec<usize> = (60..90).collect();
        let test: Vec<usize> = (90..n).collect();
        GraphData::new(&g, x, train, val, test)
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_data() {
        let data = toy_data(0);
        let mut model = MlpModel::new(&data, 1);
        let cfg = TrainConfig { epochs: 150, patience: 0, lr: 0.01, weight_decay: 0.0 };
        let result = train(&mut model, &data, cfg, 1);
        assert!(result.test_acc > 0.9, "test accuracy {}", result.test_acc);
        assert_eq!(result.epochs_run, 150);
    }

    #[test]
    fn early_stopping_halts_before_max() {
        let data = toy_data(0);
        let mut model = MlpModel::new(&data, 1);
        let cfg = TrainConfig { epochs: 500, patience: 10, lr: 0.01, weight_decay: 0.0 };
        let result = train(&mut model, &data, cfg, 1);
        assert!(result.epochs_run < 500, "early stopping never fired");
    }

    #[test]
    fn curves_are_recorded_and_loss_decreases() {
        let data = toy_data(0);
        let mut model = MlpModel::new(&data, 2);
        let cfg = TrainConfig { epochs: 60, patience: 0, lr: 0.01, weight_decay: 0.0 };
        let result = train_with_curve(&mut model, &data, cfg, 2);
        assert_eq!(result.curve.len(), 60);
        let first = result.curve.first().unwrap().train_loss;
        let last = result.curve.last().unwrap().train_loss;
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let data = toy_data(3);
        let cfg = TrainConfig { epochs: 30, patience: 0, lr: 0.01, weight_decay: 0.0 };
        let r1 = train(&mut MlpModel::new(&data, 7), &data, cfg, 7);
        let r2 = train(&mut MlpModel::new(&data, 7), &data, cfg, 7);
        assert_eq!(r1.test_acc, r2.test_acc);
        assert_eq!(r1.best_val_acc, r2.best_val_acc);
    }

    #[test]
    fn repeat_runs_summarises() {
        let data = toy_data(4);
        let cfg = TrainConfig { epochs: 40, patience: 0, lr: 0.01, weight_decay: 0.0 };
        let out = repeat_runs(|seed| MlpModel::new(&data, seed), &data, cfg, 3, 100);
        assert_eq!(out.results.len(), 3);
        assert!(out.summary.mean > 0.8);
    }
}
