//! Deterministic fault injection for the trainer (DESIGN.md §8.3).
//!
//! A [`FaultPlan`] names the exact epochs at which numerical faults are
//! injected into a training run — a NaN loss, a gradient spike, or a
//! persistent divergence — so the recovery machinery (snapshot rollback +
//! learning-rate backoff, see [`crate::trainer`]) can be exercised on
//! every CI run instead of waiting for a heterophilic graph to blow up a
//! spectral model in production. Plans are plain data: the same plan on
//! the same seed reproduces the same failure byte-for-byte.
//!
//! [`corrupt_bytes`] is the input-side counterpart: a deterministic byte
//! mutator for serialized datasets, used to prove the `.amud` parser
//! rejects garbage with a typed error instead of panicking.

/// One injected fault, anchored to a training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Replace the training loss with NaN and poison the accumulated
    /// gradients at exactly this epoch (a one-off numerical glitch — the
    /// recovery policy should roll back and continue).
    NanLoss { epoch: usize },
    /// Replace the loss with NaN at this epoch **and every later one** —
    /// an unrecoverable divergence that must exhaust the retry budget and
    /// surface as [`crate::TrainError::NonFiniteLoss`].
    PersistentNanLoss { from_epoch: usize },
    /// Multiply every accumulated gradient by `factor` at this epoch,
    /// simulating an exploding backward pass.
    GradientSpike { epoch: usize, factor: f32 },
}

/// A deterministic schedule of injected faults for one training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: adds one fault to the schedule.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether a NaN loss is injected at `epoch`.
    pub fn nan_loss_at(&self, epoch: usize) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::NanLoss { epoch: e } => e == epoch,
            Fault::PersistentNanLoss { from_epoch } => epoch >= from_epoch,
            Fault::GradientSpike { .. } => false,
        })
    }

    /// The combined gradient-spike factor injected at `epoch` (1.0 when
    /// none is scheduled).
    pub fn grad_factor_at(&self, epoch: usize) -> f32 {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::GradientSpike { epoch: e, factor } if e == epoch => Some(factor),
                _ => None,
            })
            .product()
    }
}

/// Deterministically mutates `n_mutations` bytes of a serialized dataset
/// (xorshift-seeded), returning the corrupted text. Multi-byte UTF-8
/// sequences are sidestepped by mutating into the printable ASCII range,
/// which keeps the result a valid `str` while still producing garbage
/// tokens, swapped digits, and broken keywords for the parser to choke on.
pub fn corrupt_bytes(text: &str, seed: u64, n_mutations: usize) -> String {
    let mut bytes = text.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64* — self-contained so the harness needs no RNG crate.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for _ in 0..n_mutations {
        let idx = (next() as usize) % bytes.len();
        bytes[idx] = b'!' + (next() % 94) as u8; // printable ASCII 0x21..=0x7E
    }
    // All mutations land in single-byte ASCII, so the buffer stays UTF-8.
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Deterministically truncates the text to `fraction` of its length —
/// the "half-written file" corruption class.
pub fn truncate_fraction(text: &str, fraction: f64) -> String {
    let keep = ((text.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
    text.chars().take(keep).collect()
}

/// Binary counterpart of [`corrupt_bytes`]: deterministically flips one
/// random bit in each of `n_mutations` xorshift-chosen bytes. Used by the
/// serving crate to prove snapshot seals reject bit rot with a typed
/// error instead of silently loading a different model.
pub fn corrupt_binary(bytes: &[u8], seed: u64, n_mutations: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for _ in 0..n_mutations {
        let idx = (next() as usize) % out.len();
        let bit = (next() % 8) as u8;
        out[idx] ^= 1 << bit;
    }
    out
}

/// Binary counterpart of [`truncate_fraction`] — the torn-write
/// corruption class for binary artifacts.
pub fn truncate_binary(bytes: &[u8], fraction: f64) -> Vec<u8> {
    let keep = ((bytes.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
    bytes[..keep].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_schedules_faults_at_epochs() {
        let plan = FaultPlan::new()
            .with(Fault::NanLoss { epoch: 3 })
            .with(Fault::GradientSpike { epoch: 5, factor: 1e6 });
        assert!(plan.nan_loss_at(3));
        assert!(!plan.nan_loss_at(4));
        assert_eq!(plan.grad_factor_at(5), 1e6);
        assert_eq!(plan.grad_factor_at(3), 1.0);
    }

    #[test]
    fn persistent_nan_covers_all_later_epochs() {
        let plan = FaultPlan::new().with(Fault::PersistentNanLoss { from_epoch: 10 });
        assert!(!plan.nan_loss_at(9));
        assert!(plan.nan_loss_at(10));
        assert!(plan.nan_loss_at(500));
    }

    #[test]
    fn corruption_is_deterministic_and_utf8() {
        let text = "amud-dataset v1\nname texas\nnodes 3 classes 2 features 1\n";
        let a = corrupt_bytes(text, 7, 5);
        let b = corrupt_bytes(text, 7, 5);
        assert_eq!(a, b, "same seed must corrupt identically");
        let c = corrupt_bytes(text, 8, 5);
        assert_ne!(a, c, "different seeds must diverge");
        assert_eq!(a.len(), text.len());
    }

    #[test]
    fn truncation_shortens() {
        let text = "0123456789";
        assert_eq!(truncate_fraction(text, 0.5), "01234");
        assert_eq!(truncate_fraction(text, 0.0), "");
        assert_eq!(truncate_fraction(text, 1.0), text);
    }

    #[test]
    fn binary_corruption_is_deterministic_bit_flips() {
        let bytes: Vec<u8> = (0u8..64).collect();
        let a = corrupt_binary(&bytes, 7, 5);
        let b = corrupt_binary(&bytes, 7, 5);
        assert_eq!(a, b, "same seed must corrupt identically");
        assert_ne!(a, bytes, "mutations must actually land");
        assert_eq!(a.len(), bytes.len());
        let diff = a.iter().zip(&bytes).filter(|(x, y)| x != y).count();
        assert!((1..=5).contains(&diff), "got {diff} mutated bytes");
        assert!(corrupt_binary(&[], 7, 5).is_empty());
    }

    #[test]
    fn binary_truncation_keeps_a_prefix() {
        let bytes: Vec<u8> = (0u8..10).collect();
        assert_eq!(truncate_binary(&bytes, 0.5), &bytes[..5]);
        assert!(truncate_binary(&bytes, 0.0).is_empty());
        assert_eq!(truncate_binary(&bytes, 1.0), bytes);
    }
}
