//! # amud-train
//!
//! The training harness shared by ADPA and all fifteen baselines:
//!
//! * [`data::GraphData`] — the bundle every model consumes (adjacency,
//!   features, labels, split);
//! * [`model::Model`] — the common trait (`forward` onto a tape +
//!   parameter-bank access);
//! * [`trainer`] — Adam training loop with early stopping on validation
//!   accuracy, epoch curves (Fig. 5) and seeded repeats (the paper's
//!   "repeat each experiment 10 times" protocol);
//! * [`metrics`] — accuracy and mean±std summaries (with failed-run
//!   accounting);
//! * [`grid`] — deterministic hyperparameter grid search over the paper's
//!   Sec. V-A search space, with a per-candidate failure manifest;
//! * [`error`] — the typed [`TrainError`] taxonomy every fallible path
//!   reports through (DESIGN.md §8);
//! * [`faults`] — the deterministic fault-injection harness exercising
//!   the trainer's divergence recovery (snapshot rollback + LR backoff).

pub mod data;
pub mod error;
pub mod faults;
pub mod grid;
pub mod metrics;
pub mod model;
pub mod trainer;

pub use data::GraphData;
pub use error::TrainError;
pub use faults::{
    corrupt_binary, corrupt_bytes, truncate_binary, truncate_fraction, Fault, FaultPlan,
};
pub use grid::{grid_search, GridFailure, GridOutcome, GridReport, HyperGrid, HyperPoint};
pub use metrics::{accuracy, binary_auc, confusion_matrix, macro_f1, Summary};
pub use model::Model;
pub use trainer::{
    repeat_runs, repeat_runs_with_faults, train, train_with_curve, train_with_faults, verify_model,
    HealthViolation, RecoveryEvent, RecoveryReport, RepeatOutcome, SeedFailure, TrainConfig,
    TrainCurve, TrainResult,
};
