//! # amud-train
//!
//! The training harness shared by ADPA and all fifteen baselines:
//!
//! * [`data::GraphData`] — the bundle every model consumes (adjacency,
//!   features, labels, split);
//! * [`model::Model`] — the common trait (`forward` onto a tape +
//!   parameter-bank access);
//! * [`trainer`] — Adam training loop with early stopping on validation
//!   accuracy, epoch curves (Fig. 5) and seeded repeats (the paper's
//!   "repeat each experiment 10 times" protocol);
//! * [`metrics`] — accuracy and mean±std summaries;
//! * [`grid`] — deterministic hyperparameter grid search over the paper's
//!   Sec. V-A search space.

pub mod data;
pub mod grid;
pub mod metrics;
pub mod model;
pub mod trainer;

pub use data::GraphData;
pub use grid::{grid_search, GridOutcome, HyperGrid, HyperPoint};
pub use metrics::{accuracy, binary_auc, confusion_matrix, macro_f1, Summary};
pub use model::Model;
pub use trainer::{
    repeat_runs, train, train_with_curve, verify_model, RepeatOutcome, TrainConfig, TrainCurve,
    TrainResult,
};
