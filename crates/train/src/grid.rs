//! Deterministic grid search — the reproduction's stand-in for the paper's
//! Optuna-based hyperparameter search (Sec. V-A). The paper explores
//! propagation steps and MLP depths in 1..5, dropout in {0.2, 0.4, 0.6,
//! 0.8} and learning rate in {0.1, 0.01, 0.001}; [`HyperGrid`] spans
//! exactly that space, and [`grid_search`] evaluates an arbitrary
//! user-supplied objective over any candidate list.

use crate::error::TrainError;
use crate::trainer::TrainConfig;

/// A candidate hyperparameter assignment drawn from [`HyperGrid`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperPoint {
    pub k_steps: usize,
    pub mlp_layers: usize,
    pub dropout: f32,
    pub lr: f32,
    /// Eq. 1 convolution kernel coefficient.
    pub conv_r: f32,
}

/// The paper's search space (Sec. V-A "Hyper-parameters").
#[derive(Debug, Clone)]
pub struct HyperGrid {
    pub k_steps: Vec<usize>,
    pub mlp_layers: Vec<usize>,
    pub dropout: Vec<f32>,
    pub lr: Vec<f32>,
    pub conv_r: Vec<f32>,
}

impl Default for HyperGrid {
    fn default() -> Self {
        Self {
            k_steps: vec![1, 2, 3, 4, 5],
            mlp_layers: vec![1, 2, 3, 4, 5],
            dropout: vec![0.2, 0.4, 0.6, 0.8],
            lr: vec![0.1, 0.01, 0.001],
            conv_r: vec![0.0, 0.5, 1.0],
        }
    }
}

impl HyperGrid {
    /// A small grid for smoke tests and quick tuning.
    pub fn coarse() -> Self {
        Self {
            k_steps: vec![2, 3],
            mlp_layers: vec![2],
            dropout: vec![0.2, 0.4],
            lr: vec![0.01],
            conv_r: vec![0.0],
        }
    }

    /// Enumerates every point of the grid (cartesian product) in a fixed
    /// deterministic order.
    pub fn points(&self) -> Vec<HyperPoint> {
        let mut out = Vec::new();
        for &k_steps in &self.k_steps {
            for &mlp_layers in &self.mlp_layers {
                for &dropout in &self.dropout {
                    for &lr in &self.lr {
                        for &conv_r in &self.conv_r {
                            out.push(HyperPoint { k_steps, mlp_layers, dropout, lr, conv_r });
                        }
                    }
                }
            }
        }
        out
    }

    /// Grid size.
    pub fn len(&self) -> usize {
        self.k_steps.len()
            * self.mlp_layers.len()
            * self.dropout.len()
            * self.lr.len()
            * self.conv_r.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl HyperPoint {
    /// The training configuration this point implies (epochs/patience from
    /// the base config, lr from the point).
    pub fn train_config(&self, base: TrainConfig) -> TrainConfig {
        TrainConfig { lr: self.lr, ..base }
    }
}

/// Result of one grid evaluation.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    pub point: HyperPoint,
    /// The objective (validation accuracy by convention — higher is better).
    pub score: f64,
}

/// One candidate's failure inside a sweep (the grid's failure manifest).
#[derive(Debug, Clone)]
pub struct GridFailure {
    pub point: HyperPoint,
    pub error: TrainError,
}

/// The full sweep outcome: scored candidates best-first plus the
/// candidates whose evaluation failed.
#[derive(Debug, Clone)]
pub struct GridReport {
    /// Successful evaluations, sorted best-first (ties broken by grid
    /// order — deterministic).
    pub outcomes: Vec<GridOutcome>,
    /// Candidates whose objective returned a typed error or a non-finite
    /// score. The sweep continues past them.
    pub failures: Vec<GridFailure>,
}

impl GridReport {
    /// The best-scoring successful candidate, if any survived.
    pub fn best(&self) -> Option<&GridOutcome> {
        self.outcomes.first()
    }
}

/// Evaluates `objective` at every point, recording failed candidates in
/// the report's failure manifest instead of aborting the sweep. Returns
/// `Err` only when the candidate list itself is empty.
pub fn grid_search(
    points: &[HyperPoint],
    mut objective: impl FnMut(&HyperPoint) -> Result<f64, TrainError>,
) -> Result<GridReport, TrainError> {
    if points.is_empty() {
        return Err(TrainError::bad_input("grid search needs at least one candidate"));
    }
    let mut outcomes: Vec<GridOutcome> = Vec::with_capacity(points.len());
    let mut failures: Vec<GridFailure> = Vec::new();
    for &point in points {
        match objective(&point) {
            Ok(score) if score.is_finite() => outcomes.push(GridOutcome { point, score }),
            Ok(score) => failures.push(GridFailure {
                point,
                error: TrainError::bad_input(format!(
                    "objective returned a non-finite score {score} at {point:?}"
                )),
            }),
            Err(error) => failures.push(GridFailure { point, error }),
        }
    }
    // All scores are finite here, so total order == partial order.
    outcomes.sort_by(|a, b| b.score.total_cmp(&a.score));
    Ok(GridReport { outcomes, failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_matches_paper_space() {
        let g = HyperGrid::default();
        assert_eq!(g.len(), 5 * 5 * 4 * 3 * 3);
        assert_eq!(g.points().len(), g.len());
    }

    #[test]
    fn points_are_deterministic() {
        let g = HyperGrid::coarse();
        assert_eq!(g.points(), g.points());
    }

    #[test]
    fn grid_search_finds_known_optimum() {
        let g = HyperGrid::coarse();
        let points = g.points();
        // Objective peaks at k_steps = 3, dropout = 0.4.
        let report = grid_search(&points, |p| {
            Ok(-((p.k_steps as f64 - 3.0).powi(2)) - (p.dropout as f64 - 0.4).powi(2))
        })
        .unwrap();
        let best = &report.outcomes;
        assert_eq!(best[0].point.k_steps, 3);
        assert!((best[0].point.dropout - 0.4).abs() < 1e-6);
        assert_eq!(best.len(), points.len());
        assert!(report.failures.is_empty());
        // Sorted best-first.
        assert!(best.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn grid_search_records_failures_and_continues() {
        let g = HyperGrid::coarse();
        let points = g.points();
        // Every k_steps = 3 candidate "diverges"; NaN scores are demoted
        // to the failure manifest too.
        let report = grid_search(&points, |p| {
            if p.k_steps == 3 {
                Err(TrainError::NonFiniteLoss { epoch: 5, retries: 2 })
            } else if p.dropout > 0.3 {
                Ok(f64::NAN)
            } else {
                Ok(p.dropout as f64)
            }
        })
        .unwrap();
        assert!(!report.outcomes.is_empty());
        assert!(!report.failures.is_empty());
        assert_eq!(report.outcomes.len() + report.failures.len(), points.len());
        assert!(report.outcomes.iter().all(|o| o.score.is_finite()));
        assert!(report.best().is_some());
    }

    #[test]
    fn point_overrides_learning_rate() {
        let p = HyperPoint { k_steps: 2, mlp_layers: 2, dropout: 0.2, lr: 0.1, conv_r: 0.0 };
        let cfg = p.train_config(TrainConfig::default());
        assert_eq!(cfg.lr, 0.1);
        assert_eq!(cfg.epochs, TrainConfig::default().epochs);
    }

    #[test]
    fn empty_grid_is_bad_input() {
        match grid_search(&[], |_| Ok(0.0)) {
            Err(TrainError::BadInput { .. }) => {}
            other => panic!("expected BadInput, got {other:?}"),
        }
    }
}
