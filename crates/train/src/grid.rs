//! Deterministic grid search — the reproduction's stand-in for the paper's
//! Optuna-based hyperparameter search (Sec. V-A). The paper explores
//! propagation steps and MLP depths in 1..5, dropout in {0.2, 0.4, 0.6,
//! 0.8} and learning rate in {0.1, 0.01, 0.001}; [`HyperGrid`] spans
//! exactly that space, and [`grid_search`] evaluates an arbitrary
//! user-supplied objective over any candidate list.

use crate::trainer::TrainConfig;

/// A candidate hyperparameter assignment drawn from [`HyperGrid`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperPoint {
    pub k_steps: usize,
    pub mlp_layers: usize,
    pub dropout: f32,
    pub lr: f32,
    /// Eq. 1 convolution kernel coefficient.
    pub conv_r: f32,
}

/// The paper's search space (Sec. V-A "Hyper-parameters").
#[derive(Debug, Clone)]
pub struct HyperGrid {
    pub k_steps: Vec<usize>,
    pub mlp_layers: Vec<usize>,
    pub dropout: Vec<f32>,
    pub lr: Vec<f32>,
    pub conv_r: Vec<f32>,
}

impl Default for HyperGrid {
    fn default() -> Self {
        Self {
            k_steps: vec![1, 2, 3, 4, 5],
            mlp_layers: vec![1, 2, 3, 4, 5],
            dropout: vec![0.2, 0.4, 0.6, 0.8],
            lr: vec![0.1, 0.01, 0.001],
            conv_r: vec![0.0, 0.5, 1.0],
        }
    }
}

impl HyperGrid {
    /// A small grid for smoke tests and quick tuning.
    pub fn coarse() -> Self {
        Self {
            k_steps: vec![2, 3],
            mlp_layers: vec![2],
            dropout: vec![0.2, 0.4],
            lr: vec![0.01],
            conv_r: vec![0.0],
        }
    }

    /// Enumerates every point of the grid (cartesian product) in a fixed
    /// deterministic order.
    pub fn points(&self) -> Vec<HyperPoint> {
        let mut out = Vec::new();
        for &k_steps in &self.k_steps {
            for &mlp_layers in &self.mlp_layers {
                for &dropout in &self.dropout {
                    for &lr in &self.lr {
                        for &conv_r in &self.conv_r {
                            out.push(HyperPoint { k_steps, mlp_layers, dropout, lr, conv_r });
                        }
                    }
                }
            }
        }
        out
    }

    /// Grid size.
    pub fn len(&self) -> usize {
        self.k_steps.len()
            * self.mlp_layers.len()
            * self.dropout.len()
            * self.lr.len()
            * self.conv_r.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl HyperPoint {
    /// The training configuration this point implies (epochs/patience from
    /// the base config, lr from the point).
    pub fn train_config(&self, base: TrainConfig) -> TrainConfig {
        TrainConfig { lr: self.lr, ..base }
    }
}

/// Result of one grid evaluation.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    pub point: HyperPoint,
    /// The objective (validation accuracy by convention — higher is better).
    pub score: f64,
}

/// Evaluates `objective` at every point and returns all outcomes sorted
/// best-first, ties broken by grid order (deterministic).
///
/// # Panics
/// Panics on an empty candidate list or a NaN objective.
pub fn grid_search(
    points: &[HyperPoint],
    mut objective: impl FnMut(&HyperPoint) -> f64,
) -> Vec<GridOutcome> {
    assert!(!points.is_empty(), "grid search needs at least one candidate");
    let mut outcomes: Vec<GridOutcome> = points
        .iter()
        .map(|&point| {
            let score = objective(&point);
            assert!(!score.is_nan(), "objective must not be NaN at {point:?}");
            GridOutcome { point, score }
        })
        .collect();
    outcomes.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("no NaN scores"));
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_matches_paper_space() {
        let g = HyperGrid::default();
        assert_eq!(g.len(), 5 * 5 * 4 * 3 * 3);
        assert_eq!(g.points().len(), g.len());
    }

    #[test]
    fn points_are_deterministic() {
        let g = HyperGrid::coarse();
        assert_eq!(g.points(), g.points());
    }

    #[test]
    fn grid_search_finds_known_optimum() {
        let g = HyperGrid::coarse();
        let points = g.points();
        // Objective peaks at k_steps = 3, dropout = 0.4.
        let best = grid_search(&points, |p| {
            -((p.k_steps as f64 - 3.0).powi(2)) - (p.dropout as f64 - 0.4).powi(2)
        });
        assert_eq!(best[0].point.k_steps, 3);
        assert!((best[0].point.dropout - 0.4).abs() < 1e-6);
        assert_eq!(best.len(), points.len());
        // Sorted best-first.
        assert!(best.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn point_overrides_learning_rate() {
        let p = HyperPoint { k_steps: 2, mlp_layers: 2, dropout: 0.2, lr: 0.1, conv_r: 0.0 };
        let cfg = p.train_config(TrainConfig::default());
        assert_eq!(cfg.lr, 0.1);
        assert_eq!(cfg.epochs, TrainConfig::default().epochs);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_grid_panics() {
        let _ = grid_search(&[], |_| 0.0);
    }
}
