//! Typed error taxonomy for the training stack (DESIGN.md §8).
//!
//! Every failure the trainer, the repeat/grid harnesses, or their callers
//! can hit is a [`TrainError`] variant instead of a panic: long sweeps
//! degrade gracefully (one diverged seed is recorded, not fatal) and the
//! CLI maps each variant onto a distinct process exit code so scripts can
//! tell "your input is malformed" apart from "the run diverged".

use std::fmt;

/// Everything that can go wrong while training a model.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The training loss became NaN/±Inf and the recovery budget was
    /// exhausted (`TrainConfig::max_retries` snapshot rollbacks used up).
    NonFiniteLoss {
        /// Epoch at which the last unrecoverable violation was observed.
        epoch: usize,
        /// Recovery attempts consumed before giving up.
        retries: usize,
    },
    /// The raw (pre-clip) gradient norm exceeded the watchdog limit, or
    /// became non-finite, and the recovery budget was exhausted.
    GradientExplosion {
        /// Epoch at which the last unrecoverable violation was observed.
        epoch: usize,
        /// The offending global gradient norm.
        norm: f32,
        /// The configured watchdog limit.
        limit: f32,
        /// Recovery attempts consumed before giving up.
        retries: usize,
    },
    /// The tape verifier's mandatory pre-flight rejected the model's op
    /// graph before any epoch was spent on it.
    VerifierRejected {
        /// Model name as reported by [`crate::Model::name`].
        model: String,
        /// The verifier's rendered findings.
        report: String,
    },
    /// A structurally invalid input: inconsistent bundle shapes, an empty
    /// training split, a label out of class range, a bad configuration.
    BadInput {
        /// Human-readable description of what is malformed.
        reason: String,
    },
    /// The wall-clock budget (`TrainConfig::max_seconds`) ran out.
    Timeout {
        /// Epoch reached when the budget expired.
        epoch: usize,
        /// Seconds actually elapsed.
        elapsed_secs: f64,
        /// The configured budget in seconds.
        limit_secs: f64,
    },
}

impl TrainError {
    /// Convenience constructor for [`TrainError::BadInput`].
    pub fn bad_input(reason: impl Into<String>) -> Self {
        TrainError::BadInput { reason: reason.into() }
    }

    /// Short machine-readable class name (failure manifests, logs).
    pub fn kind(&self) -> &'static str {
        match self {
            TrainError::NonFiniteLoss { .. } => "non-finite-loss",
            TrainError::GradientExplosion { .. } => "gradient-explosion",
            TrainError::VerifierRejected { .. } => "verifier-rejected",
            TrainError::BadInput { .. } => "bad-input",
            TrainError::Timeout { .. } => "timeout",
        }
    }

    /// The process exit code the CLI maps this error onto. Codes are
    /// stable API (documented in the README): 1 is reserved for generic
    /// I/O errors, 2 for usage errors, 4 for dataset parse errors.
    pub fn exit_code(&self) -> i32 {
        match self {
            TrainError::BadInput { .. } => 3,
            TrainError::VerifierRejected { .. } => 5,
            TrainError::NonFiniteLoss { .. } => 6,
            TrainError::GradientExplosion { .. } => 7,
            TrainError::Timeout { .. } => 8,
        }
    }
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NonFiniteLoss { epoch, retries } => write!(
                f,
                "training loss became non-finite at epoch {epoch} \
                 ({retries} recovery attempt(s) exhausted)"
            ),
            TrainError::GradientExplosion { epoch, norm, limit, retries } => write!(
                f,
                "gradient norm {norm:e} exceeded the watchdog limit {limit:e} at epoch \
                 {epoch} ({retries} recovery attempt(s) exhausted)"
            ),
            TrainError::VerifierRejected { model, report } => {
                write!(f, "tape verification rejected {model} before training:\n{report}")
            }
            TrainError::BadInput { reason } => write!(f, "bad input: {reason}"),
            TrainError::Timeout { epoch, elapsed_secs, limit_secs } => write!(
                f,
                "training exceeded its {limit_secs:.1}s wall-clock budget at epoch {epoch} \
                 ({elapsed_secs:.1}s elapsed)"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<amud_graph::GraphError> for TrainError {
    /// Graph-layer failures (bad normalisation coefficient, shape
    /// mismatches during operator construction) are structurally invalid
    /// inputs from the trainer's point of view: exit code 3, recorded in
    /// sweep failure manifests like any other [`TrainError::BadInput`].
    fn from(e: amud_graph::GraphError) -> Self {
        TrainError::BadInput { reason: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct() {
        let errors = [
            TrainError::NonFiniteLoss { epoch: 1, retries: 2 },
            TrainError::GradientExplosion { epoch: 1, norm: 1e9, limit: 1e4, retries: 2 },
            TrainError::VerifierRejected { model: "X".into(), report: String::new() },
            TrainError::bad_input("nope"),
            TrainError::Timeout { epoch: 1, elapsed_secs: 2.0, limit_secs: 1.0 },
        ];
        let mut codes: Vec<i32> = errors.iter().map(|e| e.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "every variant needs a distinct exit code");
        // 0 = success, 1 = generic I/O, 2 = usage, 4 = dataset parse are
        // reserved by the CLI and must not collide.
        assert!(codes.iter().all(|c| ![0, 1, 2, 4].contains(c)));
    }

    #[test]
    fn display_is_informative() {
        let e = TrainError::GradientExplosion { epoch: 12, norm: 1e9, limit: 1e4, retries: 2 };
        let s = e.to_string();
        assert!(s.contains("epoch 12") && s.contains("watchdog"), "{s}");
        assert_eq!(e.kind(), "gradient-explosion");
    }
}
