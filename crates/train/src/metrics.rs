//! Accuracy and summary statistics.

use amud_nn::DenseMatrix;

/// Fraction of `indices` whose argmax logit matches the label.
pub fn accuracy(logits: &DenseMatrix, labels: &[usize], indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = indices.iter().filter(|&&v| preds[v] == labels[v]).count();
    correct as f64 / indices.len() as f64
}

/// Mean ± sample standard deviation over repeated runs, as reported in the
/// paper's tables (`84.5±0.6` style), plus failed-run accounting so a
/// sweep with diverged seeds still summarises the survivors.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Mean over the successful runs (`NaN` when there are none).
    pub mean: f64,
    /// Sample standard deviation over the successful runs (`0` for a
    /// single run, `NaN` when there are none).
    pub std: f64,
    /// The successful runs' metric values.
    pub runs: Vec<f64>,
    /// Runs that failed with a typed error and were excluded.
    pub n_failed: usize,
}

impl Summary {
    /// Summarises a set of successful runs (no failures).
    pub fn from_runs(runs: Vec<f64>) -> Summary {
        Summary::from_outcomes(runs, 0)
    }

    /// Summarises the successful runs of a sweep in which `n_failed`
    /// further runs failed. An empty run set yields `NaN` statistics and
    /// renders as `n/a` — never a panic.
    pub fn from_outcomes(runs: Vec<f64>, n_failed: usize) -> Summary {
        if runs.is_empty() {
            return Summary { mean: f64::NAN, std: f64::NAN, runs, n_failed };
        }
        let n = runs.len() as f64;
        let mean = runs.iter().sum::<f64>() / n;
        let var = if runs.len() > 1 {
            runs.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Summary { mean, std: var.sqrt(), runs, n_failed }
    }

    /// Runs attempted: successes plus failures.
    pub fn n_attempted(&self) -> usize {
        self.runs.len() + self.n_failed
    }

    /// Whether no run at all succeeded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

impl std::fmt::Display for Summary {
    /// Formats as percentage, e.g. `84.5±0.6`; a sweep with failures is
    /// annotated `84.5±0.6 (9/10)`, a fully failed one renders `n/a (0/3)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.runs.is_empty() {
            return write!(f, "n/a (0/{})", self.n_attempted());
        }
        write!(f, "{:.1}±{:.1}", self.mean * 100.0, self.std * 100.0)?;
        if self.n_failed > 0 {
            write!(f, " ({}/{})", self.runs.len(), self.n_attempted())?;
        }
        Ok(())
    }
}

/// Average rank helper for the tables' `Rank` column: given per-model
/// accuracy lists (one accuracy per dataset, same dataset order), returns
/// the average rank of each model (1 = best). `NaN` accuracies (fully
/// failed sweep cells) sort last via total ordering instead of panicking.
pub fn average_ranks(per_model_accuracies: &[Vec<f64>]) -> Vec<f64> {
    if per_model_accuracies.is_empty() {
        return Vec::new();
    }
    let n_datasets = per_model_accuracies[0].len();
    assert!(
        per_model_accuracies.iter().all(|a| a.len() == n_datasets),
        "all models must cover the same datasets"
    );
    let n_models = per_model_accuracies.len();
    let mut ranks = vec![0.0f64; n_models];
    // Column-wise walk over a row-major structure: `d` indexes *inside*
    // each model's accuracy list, which no iterator over the outer Vec
    // can express.
    #[allow(clippy::needless_range_loop)]
    for d in 0..n_datasets {
        // A fully failed cell (NaN) must rank worst, so it sorts as -∞.
        let key = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
        let mut order: Vec<usize> = (0..n_models).collect();
        order.sort_by(|&a, &b| {
            key(per_model_accuracies[b][d]).total_cmp(&key(per_model_accuracies[a][d]))
        });
        for (rank, &model) in order.iter().enumerate() {
            ranks[model] += (rank + 1) as f64;
        }
    }
    for r in &mut ranks {
        *r /= n_datasets as f64;
    }
    ranks
}

/// Confusion matrix over `indices`: `counts[true * n_classes + pred]`.
pub fn confusion_matrix(
    logits: &DenseMatrix,
    labels: &[usize],
    indices: &[usize],
    n_classes: usize,
) -> Vec<usize> {
    let preds = logits.argmax_rows();
    let mut counts = vec![0usize; n_classes * n_classes];
    for &v in indices {
        counts[labels[v] * n_classes + preds[v]] += 1;
    }
    counts
}

/// Macro-averaged F1 over `indices` — the class-balance-robust companion
/// to accuracy (relevant for imbalanced replicas like Tolokers). Classes
/// absent from `indices` are skipped.
pub fn macro_f1(
    logits: &DenseMatrix,
    labels: &[usize],
    indices: &[usize],
    n_classes: usize,
) -> f64 {
    let cm = confusion_matrix(logits, labels, indices, n_classes);
    let mut f1_sum = 0.0f64;
    let mut present = 0usize;
    for c in 0..n_classes {
        let tp = cm[c * n_classes + c] as f64;
        let row_total: usize = (0..n_classes).map(|p| cm[c * n_classes + p]).sum();
        let col_total: usize = (0..n_classes).map(|t| cm[t * n_classes + c]).sum();
        if row_total == 0 {
            continue; // class not present in the evaluation set
        }
        present += 1;
        let precision = if col_total > 0 { tp / col_total as f64 } else { 0.0 };
        let recall = tp / row_total as f64;
        if precision + recall > 0.0 {
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    if present == 0 {
        0.0
    } else {
        f1_sum / present as f64
    }
}

/// Binary ROC-AUC over `indices` using the positive-class logit margin
/// (`logit₁ − logit₀`) as the score — the metric commonly reported for
/// the binary Tolokers benchmark. Ties are handled by the rank-sum
/// (Mann–Whitney) formulation.
///
/// # Panics
/// Panics if the problem is not binary.
pub fn binary_auc(logits: &DenseMatrix, labels: &[usize], indices: &[usize]) -> f64 {
    assert_eq!(logits.cols(), 2, "AUC requires a binary problem");
    let mut scored: Vec<(f64, usize)> = indices
        .iter()
        .map(|&v| ((logits.get(v, 1) - logits.get(v, 0)) as f64, labels[v]))
        .collect();
    let n_pos = scored.iter().filter(|&&(_, y)| y == 1).count();
    let n_neg = scored.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Average ranks over tied scores.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < scored.len() {
        let mut j = i;
        while j + 1 < scored.len() && scored[j + 1].0 == scored[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in &scored[i..=j] {
            if item.1 == 1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = DenseMatrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        let labels = vec![0, 1, 1];
        assert_eq!(accuracy(&logits, &labels, &[0, 1, 2]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &labels, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &labels, &[]), 0.0);
    }

    #[test]
    fn summary_mean_std() {
        let s = Summary::from_runs(vec![0.8, 0.9, 1.0]);
        assert!((s.mean - 0.9).abs() < 1e-12);
        assert!((s.std - 0.1).abs() < 1e-9);
        assert_eq!(format!("{s}"), "90.0±10.0");
    }

    #[test]
    fn summary_single_run_zero_std() {
        let s = Summary::from_runs(vec![0.5]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 0.5);
        assert_eq!(format!("{s}"), "50.0±0.0");
    }

    #[test]
    fn summary_empty_run_set_is_total() {
        let s = Summary::from_runs(vec![]);
        assert!(s.is_empty());
        assert!(s.mean.is_nan() && s.std.is_nan());
        assert_eq!(s.n_attempted(), 0);
        assert_eq!(format!("{s}"), "n/a (0/0)");
    }

    #[test]
    fn summary_accounts_for_failed_runs() {
        let s = Summary::from_outcomes(vec![0.8, 0.9, 1.0], 1);
        assert_eq!(s.n_failed, 1);
        assert_eq!(s.n_attempted(), 4);
        assert!((s.mean - 0.9).abs() < 1e-12);
        assert_eq!(format!("{s}"), "90.0±10.0 (3/4)");
    }

    #[test]
    fn summary_all_runs_failed() {
        let s = Summary::from_outcomes(vec![], 3);
        assert!(s.is_empty());
        assert_eq!(s.n_attempted(), 3);
        assert_eq!(format!("{s}"), "n/a (0/3)");
    }

    #[test]
    fn average_ranks_sends_nan_cells_last() {
        // Model 1's sweep fully failed on dataset 0 (NaN) — it must rank
        // below both real accuracies in that column.
        let accs = vec![vec![0.9, 0.8], vec![f64::NAN, 0.9], vec![0.5, 0.2]];
        let ranks = average_ranks(&accs);
        assert_eq!(ranks[0], (1.0 + 2.0) / 2.0);
        assert_eq!(ranks[1], (3.0 + 1.0) / 2.0);
        assert_eq!(ranks[2], (2.0 + 3.0) / 2.0);
        assert!(average_ranks(&[]).is_empty());
    }

    #[test]
    fn confusion_matrix_counts() {
        let logits = DenseMatrix::from_vec(4, 2, vec![0.9, 0.1, 0.1, 0.9, 0.9, 0.1, 0.1, 0.9]);
        let labels = vec![0, 1, 1, 1];
        let cm = confusion_matrix(&logits, &labels, &[0, 1, 2, 3], 2);
        assert_eq!(cm, vec![1, 0, 1, 2]);
    }

    #[test]
    fn macro_f1_perfect_and_degenerate() {
        let logits = DenseMatrix::from_vec(4, 2, vec![1., 0., 0., 1., 1., 0., 0., 1.]);
        let labels = vec![0, 1, 0, 1];
        assert!((macro_f1(&logits, &labels, &[0, 1, 2, 3], 2) - 1.0).abs() < 1e-12);
        // All-wrong predictions → 0.
        let bad = vec![1, 0, 1, 0];
        assert_eq!(macro_f1(&logits, &bad, &[0, 1, 2, 3], 2), 0.0);
    }

    #[test]
    fn macro_f1_penalises_majority_collapse() {
        // Predicting the majority class everywhere: accuracy 0.75 but
        // macro-F1 only counts the majority class's F1 / 2.
        let logits = DenseMatrix::from_vec(4, 2, vec![1., 0., 1., 0., 1., 0., 1., 0.]);
        let labels = vec![0, 0, 0, 1];
        let acc = accuracy(&logits, &labels, &[0, 1, 2, 3]);
        let f1 = macro_f1(&logits, &labels, &[0, 1, 2, 3], 2);
        assert!((acc - 0.75).abs() < 1e-12);
        assert!(f1 < acc, "macro-F1 {f1} must penalise collapse vs accuracy {acc}");
    }

    #[test]
    fn auc_separable_and_random() {
        // Perfectly separable: AUC 1.
        let logits = DenseMatrix::from_vec(4, 2, vec![2., 0., 1.5, 0., 0., 1.5, 0., 2.]);
        let labels = vec![0, 0, 1, 1];
        assert!((binary_auc(&logits, &labels, &[0, 1, 2, 3]) - 1.0).abs() < 1e-12);
        // Constant scores: AUC 0.5 by the tie rule.
        let flat = DenseMatrix::zeros(4, 2);
        assert!((binary_auc(&flat, &labels, &[0, 1, 2, 3]) - 0.5).abs() < 1e-12);
        // Inverted separable: AUC 0.
        let inv = DenseMatrix::from_vec(4, 2, vec![0., 2., 0., 1.5, 1.5, 0., 2., 0.]);
        assert!(binary_auc(&inv, &labels, &[0, 1, 2, 3]) < 1e-12);
    }

    #[test]
    fn average_ranks_orders_models() {
        // model 0 best everywhere, model 2 worst everywhere
        let accs = vec![vec![0.9, 0.8], vec![0.7, 0.7], vec![0.1, 0.2]];
        let ranks = average_ranks(&accs);
        assert_eq!(ranks, vec![1.0, 2.0, 3.0]);
    }
}
