//! The model trait shared by ADPA and every baseline.

use crate::data::GraphData;
use amud_nn::{NodeId, ParamBank, Tape};
use rand::rngs::StdRng;

/// A trainable node classifier.
///
/// A model is constructed against a specific [`GraphData`] (pre-computing
/// whatever operators it needs — normalised adjacencies, polynomial bases,
/// propagated features) and then repeatedly records its forward pass onto a
/// fresh tape per training step. The returned node must hold `n × C` logits.
pub trait Model {
    /// The parameter bank holding all trainable weights.
    fn bank(&self) -> &ParamBank;

    /// Mutable access for the optimiser.
    fn bank_mut(&mut self) -> &mut ParamBank;

    /// Records the forward pass; returns the logits node (`n × n_classes`).
    ///
    /// `training` toggles dropout; `rng` is only consumed when training
    /// (evaluation must be deterministic).
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId;

    /// Human-readable model name for experiment tables.
    fn name(&self) -> &'static str;

    /// Number of trainable scalars (diagnostics).
    fn n_parameters(&self) -> usize {
        self.bank().n_scalars()
    }
}
