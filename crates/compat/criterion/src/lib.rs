//! Offline stand-in for the `criterion` crate.
//!
//! Implements the calling convention the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`criterion_group!`] / [`criterion_main!`] — with a
//! plain wall-clock measurement loop instead of criterion's statistical
//! machinery: each benchmark is warmed up briefly, then timed over a fixed
//! number of batches, and min/mean per-iteration times are printed.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value passthrough.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A named benchmark id, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the body.
pub struct Bencher {
    sample_size: usize,
    /// Mean and minimum per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `body`, recording mean and min per-iteration wall-clock time.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        // Warm-up: one untimed call (page-in, allocator, caches).
        std_black_box(body());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std_black_box(body());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.sample_size as u32, min));
    }
}

fn run_bench(group: &str, label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { sample_size, result: None };
    f(&mut b);
    match b.result {
        Some((mean, min)) => {
            println!("{group}/{label}: mean {mean:?}, min {min:?} ({sample_size} samples)")
        }
        None => println!("{group}/{label}: no measurement recorded"),
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&self.name, &id.to_string(), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain string label.
    pub fn bench_function(
        &mut self,
        label: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&self.name, &label.to_string(), self.sample_size, &mut f);
        self
    }

    /// Ends the group (printing happens eagerly; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group with the default sample size.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10 }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        label: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench("bench", &label.to_string(), 10, &mut f);
        self
    }
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        // warm-up + 3 timed samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("order1", 3).to_string(), "order1/3");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
