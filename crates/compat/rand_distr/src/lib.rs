//! Offline stand-in for the `rand_distr` crate: just the [`Normal`]
//! distribution (the only one the workspace samples), generated with the
//! Box–Muller transform over the vendored `rand` stub.

use rand::RngCore;

/// A distribution samplable with an RNG, mirroring `rand_distr::Distribution`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for non-finite or negative spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Floating-point scalars [`Normal`] can produce, mirroring
/// `rand_distr::num_traits::Float` in miniature.
pub trait Float: Copy + PartialOrd {
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn is_finite(self) -> bool;
}

impl Float for f32 {
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Float for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Builds the distribution, rejecting NaN/negative spread.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev.to_f64() < 0.0 {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller: two uniforms → one standard normal. The first uniform
        // is kept away from zero so ln() stays finite.
        let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_negative_std() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f64, f64::NAN).is_err());
    }

    #[test]
    fn sample_moments_are_plausible() {
        let normal = Normal::new(2.0f64, 3.0).expect("valid parameters");
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn samples_are_finite() {
        let normal = Normal::new(0.0f32, 1.0).expect("valid parameters");
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..10_000).all(|_| Float::is_finite(normal.sample(&mut rng))));
    }
}
