//! Offline stand-in for the `proptest` crate.
//!
//! Supports exactly the surface the workspace's property tests use: range
//! strategies over integers and floats, tuple strategies, and
//! `prop::collection::vec`, driven by the [`proptest!`] macro with
//! `prop_assert!` / `prop_assert_eq!` assertions and an optional
//! `ProptestConfig::with_cases` header.
//!
//! Unlike the real crate there is no shrinking: a failing case reports its
//! index and message and panics immediately. Cases are generated from a
//! fixed seed, so failures are reproducible run to run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

pub mod strategy {
    use super::*;

    /// A generator of random values, mirroring `proptest::strategy::Strategy`
    /// minus shrinking.
    pub trait Strategy {
        type Value;

        /// Produces one random value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($t:ty) => {
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        };
    }

    impl_range_strategy!(usize);
    impl_range_strategy!(u64);
    impl_range_strategy!(i64);
    impl_range_strategy!(f32);
    impl_range_strategy!(f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

    /// Strategy for `Vec<T>` with a fixed or ranged length.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Length specifications accepted by [`super::collection::vec`]: an
    /// exact `usize` or a half-open `Range<usize>`.
    pub trait IntoLenRange {
        fn into_len_range(self) -> Range<usize>;
    }

    impl IntoLenRange for usize {
        fn into_len_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoLenRange for Range<usize> {
        fn into_len_range(self) -> Range<usize> {
            self
        }
    }

    pub(crate) fn vec_strategy<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        VecStrategy { element, len: len.into_len_range() }
    }
}

/// The `proptest::prop` facade module.
pub mod prop {
    pub mod collection {
        use crate::strategy::{IntoLenRange, Strategy, VecStrategy};

        /// `Vec` strategy with an element strategy and a length spec.
        pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
            crate::strategy::vec_strategy(element, len)
        }
    }
}

pub mod test_runner {
    /// A failed property case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }

        /// The failure explanation.
        pub fn message(&self) -> &str {
            &self.message
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Runs one named property: `cases` seeded inputs through the body closure.
/// Used by the [`proptest!`] macro; not part of the public mirror API.
pub fn run_property<F>(name: &str, cases: u32, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), test_runner::TestCaseError>,
{
    // Seed derived from the test name so distinct properties explore
    // distinct streams but every run of the suite is identical.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3));
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..cases {
        if let Err(e) = case(&mut rng) {
            panic!("property '{name}' failed at case {i}/{cases}: {}", e.message());
        }
    }
}

/// Mirror of `proptest::proptest!`: wraps each `fn name(arg in strategy, ...)`
/// item in a seeded multi-case runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), config.cases, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Mirror of `proptest::prop_assert!`: on failure returns a
/// [`test_runner::TestCaseError`] from the enclosing `Result` context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in prop::collection::vec(0usize..5, 7),
            ranged in prop::collection::vec((0usize..4, 0usize..4), 0..9),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!(ranged.len() < 9);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        crate::run_property("always_fails", 5, |_| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}
