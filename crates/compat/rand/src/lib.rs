//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API surface it consumes — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — over a SplitMix64 generator.
//! Everything is deterministic given the seed, which is all the
//! reproduction's seeded-repeats protocol requires; no claim of statistical
//! quality beyond "good enough for Xavier init, dropout masks and dSBM
//! sampling" is made.
//!
//! The crate is named `rand` and exposed as a path dependency so that the
//! rest of the workspace compiles unchanged against either this stub or the
//! real crate.

use std::ops::Range;

/// A source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f32`/`f64` uniform in `[0, 1)`, integers over the full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable via [`Rng::gen`].
pub trait Standard {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable via [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

impl SampleUniform for usize {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the span sizes used here and determinism is what matters.
        range.start + ((rng.next_u64() as u128 * span as u128) >> 64) as usize
    }
}

impl SampleUniform for u64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        range.start + ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

impl SampleUniform for i64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        range.start + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as i64
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u: f32 = Standard::from_rng(rng);
        range.start + u * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u: f64 = Standard::from_rng(rng);
        range.start + u * (range.end - range.start)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 — tiny state, solid
    /// 64-bit avalanche mixing, and fully deterministic from the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle leaving order intact is astronomically unlikely"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
