//! Named replicas of the paper's 14 benchmark datasets (Table II).
//!
//! Each [`ReplicaSpec`] records the real dataset's statistics (node/edge/
//! feature counts, class count, split protocol, edge homophily) together
//! with the generator knobs chosen to land the replica in the same AMUD
//! regime the paper reports: `U-` (Score < 0.5, model undirected) or `D-`
//! (Score > 0.5, keep directed edges).
//!
//! The knob mapping, per dataset family:
//!
//! * homophilous citation/co-purchase/web graphs (CoraML … Amazon-computers)
//!   — high `edge_homophily`, mild direction informativeness: the paper
//!   reports AMUD scores 0.27–0.41 for these, i.e. *undirected*;
//! * heterophilous WebKB/wiki/syntax graphs (Texas … Roman-empire) — low
//!   homophily but strongly *oriented* inter-class edges (`d ≥ 0.75`,
//!   cyclic), i.e. the paper's `D-` regime with scores 0.64–0.81;
//! * the two "abnormal cases" of Table V (Actor, Amazon-rating) — low
//!   homophily **and** uninformative orientation (`Uniform` structure),
//!   which is exactly why AMUD overrides the conventional heterophily
//!   labelling and recommends undirected modeling.
//!
//! Replicas can be scaled down with [`ReplicaScale`] so the full table
//! sweeps finish on a CPU; scaling preserves class count, split protocol,
//! homophily and direction informativeness, and approximately preserves
//! average degree.

use crate::dsbm::{DsbmConfig, InterClassStructure};
use crate::features::FeatureKind;
use crate::splits::{Split, SplitSpec};
use amud_graph::DiGraph;
use amud_nn::DenseMatrix;
use rand::SeedableRng;

/// The paper's AMUD modeling guidance for a dataset (Table II last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmudRegime {
    /// Score < 0.5 — transform to undirected (`U-`).
    Undirected,
    /// Score > 0.5 — retain directed edges (`D-`).
    Directed,
}

/// Static description of one benchmark replica.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    pub name: &'static str,
    pub description: &'static str,
    /// Statistics of the real dataset (Table II).
    pub paper_nodes: usize,
    pub paper_edges: usize,
    pub paper_features: usize,
    pub n_classes: usize,
    pub split: SplitSpec,
    /// Target edge homophily (Table II `E.Homo`).
    pub edge_homophily: f64,
    /// The AMUD decision the paper reports.
    pub regime: AmudRegime,
    /// The paper's AMUD score (None for naturally undirected PubMed).
    pub paper_amud_score: Option<f64>,
    // Generator knobs.
    pub direction_informativeness: f64,
    pub structure: InterClassStructure,
    /// Unstructured fraction of inter-class edges (see
    /// [`DsbmConfig::topology_noise`]); calibrated per dataset so replica
    /// accuracy lands in the paper's band instead of saturating.
    pub topology_noise: f64,
    pub degree_exponent: f64,
    pub features: FeatureKind,
}

/// Down-scaling policy for replicas.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaScale {
    /// Maximum number of nodes; larger datasets are shrunk proportionally.
    pub node_cap: usize,
    /// Maximum feature dimension.
    pub feature_cap: usize,
    /// Maximum average (out-)degree; denser datasets are thinned.
    pub avg_degree_cap: f64,
}

impl Default for ReplicaScale {
    fn default() -> Self {
        Self { node_cap: 1200, feature_cap: 128, avg_degree_cap: 16.0 }
    }
}

impl ReplicaScale {
    /// Full paper-scale replica generation (no caps).
    pub fn full() -> Self {
        Self { node_cap: usize::MAX, feature_cap: usize::MAX, avg_degree_cap: f64::INFINITY }
    }

    /// A small scale for fast tests.
    pub fn tiny() -> Self {
        Self { node_cap: 300, feature_cap: 32, avg_degree_cap: 10.0 }
    }

    fn nodes(&self, spec: &ReplicaSpec) -> usize {
        spec.paper_nodes.min(self.node_cap)
    }

    fn edges(&self, spec: &ReplicaSpec) -> usize {
        let n = self.nodes(spec) as f64;
        let ratio = n / spec.paper_nodes as f64;
        let scaled = (spec.paper_edges as f64 * ratio) as usize;
        let degree_capped = (n * self.avg_degree_cap) as usize;
        scaled.min(degree_capped).max(2 * self.nodes(spec))
    }

    fn features(&self, spec: &ReplicaSpec) -> usize {
        spec.paper_features.min(self.feature_cap)
    }
}

/// A fully materialised dataset: directed graph + features + split.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub spec: ReplicaSpec,
    pub graph: DiGraph,
    pub features: DenseMatrix,
    pub split: Split,
}

impl Dataset {
    /// Generates the dataset from a spec at the given scale, deterministically
    /// in `seed`.
    pub fn generate(spec: ReplicaSpec, scale: ReplicaScale, seed: u64) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ fxhash(spec.name));
        let n = scale.nodes(&spec);
        let m = scale.edges(&spec);
        let f = scale.features(&spec);
        let graph = DsbmConfig::new(n, m, spec.n_classes)
            .with_homophily(spec.edge_homophily)
            .with_direction_informativeness(spec.direction_informativeness)
            .with_structure(spec.structure)
            .with_topology_noise(spec.topology_noise)
            .with_degree_exponent(spec.degree_exponent)
            .generate(&mut rng);
        let Some(labels) = graph.labels().map(<[usize]>::to_vec) else {
            unreachable!("DsbmConfig::generate always attaches labels via with_labels")
        };
        let features = spec.features.generate(&labels, spec.n_classes, f, &mut rng);
        // Count-based splits from the paper can exceed a scaled-down node
        // count; shrink them proportionally while keeping at least one
        // training node per class.
        let split_spec = match spec.split {
            SplitSpec::Counts { train, val, test } if train + val + test > n => {
                let ratio = n as f64 / (train + val + test) as f64;
                let train = ((train as f64 * ratio) as usize).max(spec.n_classes);
                let val = (val as f64 * ratio) as usize;
                let test = n - train - val;
                SplitSpec::Counts { train, val, test }
            }
            other => other,
        };
        let split = Split::generate(split_spec, &labels, spec.n_classes, &mut rng);
        Dataset { spec, graph, features, split }
    }

    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    pub fn n_classes(&self) -> usize {
        self.spec.n_classes
    }

    pub fn labels(&self) -> &[usize] {
        let Some(labels) = self.graph.labels() else {
            unreachable!("every Dataset constructor goes through DSBM, which attaches labels")
        };
        labels
    }

    /// The same dataset with the coarse undirected transformation applied.
    pub fn to_undirected(&self) -> Dataset {
        Dataset {
            spec: self.spec.clone(),
            graph: self.graph.to_undirected(),
            features: self.features.clone(),
            split: self.split.clone(),
        }
    }
}

/// Stable tiny string hash so each dataset gets decorrelated RNG streams
/// from the same user seed.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

/// Split used by the WebKB-style datasets: 48% / 32% / 20%.
const WEBKB_SPLIT: SplitSpec = SplitSpec::Fractions { train: 0.48, val: 0.32, test: 0.20 };
/// Split used by the Platonov-style datasets: 50% / 25% / 25%.
const HALF_SPLIT: SplitSpec = SplitSpec::Fractions { train: 0.50, val: 0.25, test: 0.25 };

/// All 14 replica specs, in Table II order.
pub fn all_specs() -> Vec<ReplicaSpec> {
    vec![
        ReplicaSpec {
            name: "cora_ml",
            description: "citation network",
            paper_nodes: 2995,
            paper_edges: 8416,
            paper_features: 2879,
            n_classes: 7,
            split: SplitSpec::Counts { train: 140, val: 500, test: 2355 },
            edge_homophily: 0.792,
            regime: AmudRegime::Undirected,
            paper_amud_score: Some(0.380),
            direction_informativeness: 0.30,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.4,
            degree_exponent: 0.4,
            features: FeatureKind::BagOfWords { signal: 0.8 },
        },
        ReplicaSpec {
            name: "citeseer",
            description: "citation network",
            paper_nodes: 3312,
            paper_edges: 4715,
            paper_features: 3703,
            n_classes: 6,
            split: SplitSpec::Counts { train: 120, val: 500, test: 2692 },
            edge_homophily: 0.739,
            regime: AmudRegime::Undirected,
            paper_amud_score: Some(0.269),
            direction_informativeness: 0.20,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.4,
            degree_exponent: 0.3,
            features: FeatureKind::BagOfWords { signal: 0.45 },
        },
        ReplicaSpec {
            name: "pubmed",
            description: "citation network (naturally undirected)",
            paper_nodes: 19717,
            paper_edges: 88648,
            paper_features: 500,
            n_classes: 3,
            split: SplitSpec::Counts { train: 60, val: 500, test: 1000 },
            edge_homophily: 0.802,
            regime: AmudRegime::Undirected,
            paper_amud_score: None,
            direction_informativeness: 0.0,
            structure: InterClassStructure::Uniform,
            topology_noise: 0.35,
            degree_exponent: 0.4,
            features: FeatureKind::Gaussian { signal: 0.6 },
        },
        ReplicaSpec {
            name: "tolokers",
            description: "crowd-sourcing network",
            paper_nodes: 11758,
            paper_edges: 519_000,
            paper_features: 10,
            n_classes: 2,
            split: HALF_SPLIT,
            edge_homophily: 0.595,
            regime: AmudRegime::Undirected,
            paper_amud_score: Some(0.405),
            direction_informativeness: 0.35,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.55,
            degree_exponent: 0.8,
            features: FeatureKind::Gaussian { signal: 0.4 },
        },
        ReplicaSpec {
            name: "wikics",
            description: "web-link network",
            paper_nodes: 11701,
            paper_edges: 290_519,
            paper_features: 300,
            n_classes: 10,
            split: SplitSpec::Counts { train: 580, val: 1769, test: 5847 },
            edge_homophily: 0.689,
            regime: AmudRegime::Undirected,
            paper_amud_score: Some(0.392),
            direction_informativeness: 0.32,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.45,
            degree_exponent: 0.6,
            features: FeatureKind::Gaussian { signal: 0.55 },
        },
        ReplicaSpec {
            name: "amazon_computers",
            description: "co-purchase network",
            paper_nodes: 13752,
            paper_edges: 287_209,
            paper_features: 767,
            n_classes: 10,
            split: SplitSpec::Counts { train: 200, val: 300, test: 12881 },
            edge_homophily: 0.786,
            regime: AmudRegime::Undirected,
            paper_amud_score: Some(0.314),
            direction_informativeness: 0.25,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.4,
            degree_exponent: 0.6,
            features: FeatureKind::Gaussian { signal: 0.6 },
        },
        ReplicaSpec {
            name: "texas",
            description: "web-page network (WebKB)",
            paper_nodes: 183,
            paper_edges: 279,
            paper_features: 1703,
            n_classes: 5,
            split: WEBKB_SPLIT,
            edge_homophily: 0.061,
            regime: AmudRegime::Directed,
            paper_amud_score: Some(0.814),
            direction_informativeness: 0.95,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.2,
            degree_exponent: 0.5,
            features: FeatureKind::BagOfWords { signal: 0.8 },
        },
        ReplicaSpec {
            name: "cornell",
            description: "web-page network (WebKB)",
            paper_nodes: 183,
            paper_edges: 298,
            paper_features: 1703,
            n_classes: 5,
            split: WEBKB_SPLIT,
            edge_homophily: 0.122,
            regime: AmudRegime::Directed,
            paper_amud_score: Some(0.712),
            direction_informativeness: 0.85,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.2,
            degree_exponent: 0.5,
            features: FeatureKind::BagOfWords { signal: 0.8 },
        },
        ReplicaSpec {
            name: "wisconsin",
            description: "web-page network (WebKB)",
            paper_nodes: 251,
            paper_edges: 450,
            paper_features: 1703,
            n_classes: 5,
            split: WEBKB_SPLIT,
            edge_homophily: 0.178,
            regime: AmudRegime::Directed,
            paper_amud_score: Some(0.685),
            direction_informativeness: 0.90,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.2,
            degree_exponent: 0.5,
            features: FeatureKind::BagOfWords { signal: 0.8 },
        },
        ReplicaSpec {
            name: "chameleon",
            description: "wiki-page network (filtered)",
            paper_nodes: 890,
            paper_edges: 13584,
            paper_features: 2325,
            n_classes: 5,
            split: WEBKB_SPLIT,
            edge_homophily: 0.245,
            regime: AmudRegime::Directed,
            paper_amud_score: Some(0.657),
            direction_informativeness: 0.75,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.55,
            degree_exponent: 0.8,
            features: FeatureKind::Gaussian { signal: 0.15 },
        },
        ReplicaSpec {
            name: "squirrel",
            description: "wiki-page network (filtered)",
            paper_nodes: 2223,
            paper_edges: 65718,
            paper_features: 2089,
            n_classes: 5,
            split: WEBKB_SPLIT,
            edge_homophily: 0.216,
            regime: AmudRegime::Directed,
            paper_amud_score: Some(0.693),
            direction_informativeness: 0.80,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.6,
            degree_exponent: 0.9,
            features: FeatureKind::Gaussian { signal: 0.12 },
        },
        ReplicaSpec {
            name: "actor",
            description: "actor co-occurrence network",
            paper_nodes: 7600,
            paper_edges: 26659,
            paper_features: 932,
            n_classes: 5,
            split: WEBKB_SPLIT,
            edge_homophily: 0.217,
            regime: AmudRegime::Undirected,
            paper_amud_score: Some(0.356),
            direction_informativeness: 0.10,
            structure: InterClassStructure::Uniform,
            topology_noise: 0.0,
            degree_exponent: 0.0,
            features: FeatureKind::BagOfWords { signal: 0.3 },
        },
        ReplicaSpec {
            name: "roman_empire",
            description: "article syntax network",
            paper_nodes: 22662,
            paper_edges: 32927,
            paper_features: 300,
            n_classes: 18,
            split: HALF_SPLIT,
            edge_homophily: 0.047,
            regime: AmudRegime::Directed,
            paper_amud_score: Some(0.642),
            direction_informativeness: 0.85,
            structure: InterClassStructure::Cyclic,
            topology_noise: 0.3,
            degree_exponent: 0.0,
            features: FeatureKind::Gaussian { signal: 0.5 },
        },
        ReplicaSpec {
            name: "amazon_rating",
            description: "e-commerce rating network",
            paper_nodes: 24492,
            paper_edges: 93050,
            paper_features: 300,
            n_classes: 5,
            split: HALF_SPLIT,
            edge_homophily: 0.380,
            regime: AmudRegime::Undirected,
            paper_amud_score: Some(0.395),
            direction_informativeness: 0.10,
            structure: InterClassStructure::Uniform,
            topology_noise: 0.0,
            degree_exponent: 0.0,
            features: FeatureKind::Gaussian { signal: 0.35 },
        },
    ]
}

/// The spec for a named dataset, as a typed error on unknown names;
/// valid names are the `snake_case` dataset identifiers from
/// [`all_specs`].
pub fn try_spec(name: &str) -> Result<ReplicaSpec, crate::error::DatasetError> {
    all_specs()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| crate::error::DatasetError::UnknownDataset { name: name.to_string() })
}

/// The spec for a named dataset.
///
/// # Panics
/// Panics on an unknown name — use [`try_spec`] for the fallible form.
pub fn spec(name: &str) -> ReplicaSpec {
    try_spec(name).unwrap_or_else(|e| panic!("{e}"))
}

/// Generates a named replica, as a typed error on unknown names.
pub fn try_replica(
    name: &str,
    scale: ReplicaScale,
    seed: u64,
) -> Result<Dataset, crate::error::DatasetError> {
    Ok(Dataset::generate(try_spec(name)?, scale, seed))
}

/// Generates a named replica.
///
/// # Panics
/// Panics on an unknown name — use [`try_replica`] for the fallible form.
pub fn replica(name: &str, scale: ReplicaScale, seed: u64) -> Dataset {
    Dataset::generate(spec(name), scale, seed)
}

/// Generates all 14 replicas.
pub fn all_replicas(scale: ReplicaScale, seed: u64) -> Vec<Dataset> {
    all_specs().into_iter().map(|s| Dataset::generate(s, scale, seed)).collect()
}

/// Dataset names of the Table III (Score < 0.5, homophilous) group.
pub fn homophilous_names() -> Vec<&'static str> {
    vec!["cora_ml", "citeseer", "pubmed", "tolokers", "wikics", "amazon_computers"]
}

/// Dataset names of the Table IV (Score > 0.5, heterophilous) group.
pub fn heterophilous_names() -> Vec<&'static str> {
    vec!["texas", "cornell", "wisconsin", "chameleon", "squirrel", "roman_empire"]
}

/// The two Table V "abnormal" datasets (heterophilous by the classic
/// measures, yet AMUD recommends undirected modeling).
pub fn abnormal_names() -> Vec<&'static str> {
    vec!["actor", "amazon_rating"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_graph::measures::edge_homophily;

    #[test]
    fn fourteen_specs() {
        assert_eq!(all_specs().len(), 14);
        let groups =
            homophilous_names().len() + heterophilous_names().len() + abnormal_names().len();
        assert_eq!(groups, 14);
    }

    #[test]
    fn replica_matches_spec_shape() {
        let d = replica("texas", ReplicaScale::default(), 0);
        // Texas is under every default cap, so exact sizes apply.
        assert_eq!(d.n_nodes(), 183);
        assert_eq!(d.n_classes(), 5);
        assert_eq!(d.features.rows(), 183);
        assert!(d.split.is_disjoint());
    }

    #[test]
    fn scaling_caps_apply() {
        let d = replica("pubmed", ReplicaScale::default(), 0);
        assert_eq!(d.n_nodes(), 1200);
        assert!(d.features.cols() <= 128);
        let deg = d.graph.n_edges() as f64 / d.n_nodes() as f64;
        assert!(deg <= 16.5, "avg degree {deg}");
    }

    #[test]
    fn replicas_hit_target_homophily() {
        for name in ["cora_ml", "chameleon", "citeseer", "squirrel"] {
            let d = replica(name, ReplicaScale::default(), 1);
            let h = edge_homophily(d.graph.adjacency(), d.labels());
            let target = d.spec.edge_homophily;
            assert!((h - target).abs() < 0.08, "{name}: target {target}, achieved {h}");
        }
    }

    #[test]
    fn different_datasets_different_graphs() {
        let a = replica("texas", ReplicaScale::tiny(), 7);
        let b = replica("cornell", ReplicaScale::tiny(), 7);
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_ne!(ea, eb, "same seed must still decorrelate datasets");
    }

    #[test]
    fn undirected_view_preserves_everything_but_topology() {
        let d = replica("cora_ml", ReplicaScale::tiny(), 2);
        let u = d.to_undirected();
        assert!(u.graph.is_symmetric());
        assert_eq!(u.features, d.features);
        assert_eq!(u.split, d.split);
        assert_eq!(u.labels(), d.labels());
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_name_panics() {
        let _ = spec("not_a_dataset");
    }
}
