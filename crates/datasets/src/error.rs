//! Typed errors for dataset loading and parsing (DESIGN.md §8).
//!
//! A malformed `.amud` file, an unknown dataset name, or an inconsistent
//! graph must surface as a [`DatasetError`] the caller can match on —
//! never a panic and never a silently partial dataset.

use amud_graph::GraphError;
use std::fmt;

/// Everything that can go wrong materialising a [`crate::Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// The serialized text is malformed; `line` is 1-based.
    Parse { line: usize, reason: String },
    /// No compiled-in replica spec carries this name.
    UnknownDataset { name: String },
    /// The parsed pieces do not assemble into a consistent graph.
    Graph(GraphError),
}

impl DatasetError {
    /// Convenience constructor for [`DatasetError::Parse`].
    pub fn parse(line: usize, reason: impl Into<String>) -> Self {
        DatasetError::Parse { line, reason: reason.into() }
    }

    /// The process exit code the CLI maps this error onto (see the README
    /// exit-code table; 4 = dataset parse/validation failure, 3 = unknown
    /// name, i.e. caller-side bad input).
    pub fn exit_code(&self) -> i32 {
        match self {
            DatasetError::UnknownDataset { .. } => 3,
            DatasetError::Parse { .. } | DatasetError::Graph(_) => 4,
        }
    }
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            DatasetError::UnknownDataset { name } => {
                write!(f, "unknown dataset '{name}' (run `amud list` for the available replicas)")
            }
            DatasetError::Graph(e) => write!(f, "inconsistent graph: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DatasetError {
    fn from(e: GraphError) -> Self {
        DatasetError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_numbers() {
        let e = DatasetError::parse(17, "expected an integer node id");
        assert_eq!(e.to_string(), "parse error at line 17: expected an integer node id");
        assert_eq!(e.exit_code(), 4);
    }

    #[test]
    fn graph_errors_wrap() {
        let e: DatasetError = GraphError::EmptyGraph.into();
        assert!(e.to_string().contains("non-empty"));
        assert_eq!(e.exit_code(), 4);
    }

    #[test]
    fn unknown_dataset_names_itself() {
        let e = DatasetError::UnknownDataset { name: "corra".into() };
        assert!(e.to_string().contains("corra"));
        assert_eq!(e.exit_code(), 3);
    }
}
