//! Class-conditional node feature generators.
//!
//! Two families cover the paper's datasets:
//!
//! * [`gaussian_features`] — dense features around per-class centroids
//!   (WikiCS-, Roman-empire-, Tolokers-style dense embeddings);
//! * [`bag_of_words_features`] — sparse binary features where each class
//!   elevates a subset of "topic words" (CoraML/CiteSeer-style citation
//!   bags-of-words).
//!
//! The `signal` knob controls class separability: 0 gives pure noise (the
//! graph is then the only useful signal), 1 gives near-separable features.

use amud_nn::DenseMatrix;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Which feature family a replica uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureKind {
    /// Dense Gaussian features with the given class-signal strength.
    Gaussian { signal: f32 },
    /// Sparse binary bag-of-words with the given class-signal strength.
    BagOfWords { signal: f32 },
}

impl FeatureKind {
    /// Generates an `n × dim` feature matrix for the given labels.
    pub fn generate<R: Rng>(
        self,
        labels: &[usize],
        n_classes: usize,
        dim: usize,
        rng: &mut R,
    ) -> DenseMatrix {
        match self {
            FeatureKind::Gaussian { signal } => {
                gaussian_features(labels, n_classes, dim, signal, rng)
            }
            FeatureKind::BagOfWords { signal } => {
                bag_of_words_features(labels, n_classes, dim, signal, rng)
            }
        }
    }
}

/// Dense features: `x_v = signal · µ_{y_v} + N(0, I)`, where each class
/// centroid `µ_k ~ N(0, I)`. Higher `signal` separates classes more.
pub fn gaussian_features<R: Rng>(
    labels: &[usize],
    n_classes: usize,
    dim: usize,
    signal: f32,
    rng: &mut R,
) -> DenseMatrix {
    let Ok(normal) = Normal::new(0.0f32, 1.0) else {
        unreachable!("N(0, 1) has finite mean and positive std dev")
    };
    let centroids: Vec<Vec<f32>> =
        (0..n_classes).map(|_| (0..dim).map(|_| normal.sample(rng)).collect()).collect();
    let mut out = DenseMatrix::zeros(labels.len(), dim);
    for (v, &y) in labels.iter().enumerate() {
        let row = out.row_mut(v);
        for (j, x) in row.iter_mut().enumerate() {
            *x = signal * centroids[y][j] + normal.sample(rng);
        }
    }
    out
}

/// Sparse binary features: each class owns `dim / n_classes` topic words.
/// A node switches on each of its class's words with probability
/// `0.05 + 0.3 · signal` and every other word with probability `0.02`.
pub fn bag_of_words_features<R: Rng>(
    labels: &[usize],
    n_classes: usize,
    dim: usize,
    signal: f32,
    rng: &mut R,
) -> DenseMatrix {
    let words_per_class = (dim / n_classes).max(1);
    let p_topic = 0.05 + 0.3 * signal;
    let p_background = 0.02;
    let mut out = DenseMatrix::zeros(labels.len(), dim);
    for (v, &y) in labels.iter().enumerate() {
        let topic_start = (y * words_per_class).min(dim);
        let topic_end = ((y + 1) * words_per_class).min(dim);
        let row = out.row_mut(v);
        for (j, x) in row.iter_mut().enumerate() {
            let p = if (topic_start..topic_end).contains(&j) { p_topic } else { p_background };
            if rng.gen::<f32>() < p {
                *x = 1.0;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn labels() -> Vec<usize> {
        (0..300).map(|v| v % 3).collect()
    }

    /// Nearest-centroid accuracy on the generated features — a proxy for
    /// class separability.
    fn centroid_accuracy(x: &DenseMatrix, labels: &[usize], c: usize) -> f64 {
        let dim = x.cols();
        let mut centroids = vec![vec![0.0f64; dim]; c];
        let mut counts = vec![0usize; c];
        for (v, &y) in labels.iter().enumerate() {
            counts[y] += 1;
            for (j, &xv) in x.row(v).iter().enumerate() {
                centroids[y][j] += xv as f64;
            }
        }
        for (cent, &cnt) in centroids.iter_mut().zip(&counts) {
            for e in cent.iter_mut() {
                *e /= cnt as f64;
            }
        }
        let correct = labels
            .iter()
            .enumerate()
            .filter(|&(v, &y)| {
                let best = (0..c)
                    .min_by(|&a, &b| {
                        let da: f64 = x
                            .row(v)
                            .iter()
                            .zip(&centroids[a])
                            .map(|(&xv, &m)| (xv as f64 - m).powi(2))
                            .sum();
                        let db: f64 = x
                            .row(v)
                            .iter()
                            .zip(&centroids[b])
                            .map(|(&xv, &m)| (xv as f64 - m).powi(2))
                            .sum();
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                best == y
            })
            .count();
        correct as f64 / labels.len() as f64
    }

    #[test]
    fn gaussian_signal_controls_separability() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let labels = labels();
        let strong = gaussian_features(&labels, 3, 32, 1.5, &mut rng);
        let weak = gaussian_features(&labels, 3, 32, 0.0, &mut rng);
        let acc_strong = centroid_accuracy(&strong, &labels, 3);
        let acc_weak = centroid_accuracy(&weak, &labels, 3);
        assert!(acc_strong > 0.95, "strong signal accuracy {acc_strong}");
        assert!(acc_weak < 0.6, "zero signal accuracy {acc_weak}");
    }

    #[test]
    fn bow_features_are_binary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let labels = labels();
        let x = bag_of_words_features(&labels, 3, 60, 0.8, &mut rng);
        assert!(x.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        // Topic words fire more often than background.
        let acc = centroid_accuracy(&x, &labels, 3);
        assert!(acc > 0.8, "BoW separability {acc}");
    }

    #[test]
    fn bow_handles_dim_smaller_than_classes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let labels = vec![0, 1, 2, 3, 4];
        let x = bag_of_words_features(&labels, 5, 3, 0.5, &mut rng);
        assert_eq!(x.shape(), (5, 3));
    }

    #[test]
    fn feature_kind_dispatch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let labels = labels();
        let g = FeatureKind::Gaussian { signal: 1.0 }.generate(&labels, 3, 16, &mut rng);
        let b = FeatureKind::BagOfWords { signal: 1.0 }.generate(&labels, 3, 16, &mut rng);
        assert_eq!(g.shape(), (300, 16));
        assert_eq!(b.shape(), (300, 16));
    }
}
