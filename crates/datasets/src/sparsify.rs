//! Sparsity stressors for the Fig. 7 robustness experiments.
//!
//! The paper evaluates three practical sparsity regimes on digraphs:
//!
//! * **feature sparsity** — a fraction of *unlabeled* nodes lose their
//!   features entirely (industrial graphs where profiles are incomplete);
//! * **edge sparsity** — a fraction of directed edges is removed uniformly;
//! * **label sparsity** — only `k` labelled samples per class remain
//!   (implemented in [`crate::splits::Split::with_labels_per_class`]).

use crate::registry::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Zeroes the feature rows of a `fraction` of nodes outside the training
/// set (train-node profiles are assumed curated, matching the paper's
/// setting of "feature representation of unlabeled nodes partially
/// missing").
pub fn mask_features(dataset: &Dataset, fraction: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let train: std::collections::HashSet<usize> = dataset.split.train.iter().copied().collect();
    let mut candidates: Vec<usize> =
        (0..dataset.n_nodes()).filter(|v| !train.contains(v)).collect();
    candidates.shuffle(&mut rng);
    let k = (candidates.len() as f64 * fraction).round() as usize;
    let mut out = dataset.clone();
    for &v in &candidates[..k] {
        out.features.row_mut(v).fill(0.0);
    }
    out
}

/// Removes each directed edge independently with probability `fraction`.
pub fn drop_edges(dataset: &Dataset, fraction: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = dataset.clone();
    out.graph = dataset.graph.filter_edges(|_, _| rng.gen::<f64>() >= fraction);
    out
}

/// Restricts the training set to `k` labelled nodes per class.
pub fn limit_labels(dataset: &Dataset, per_class: usize) -> Dataset {
    let mut out = dataset.clone();
    out.split =
        dataset.split.with_labels_per_class(dataset.labels(), dataset.n_classes(), per_class);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{replica, ReplicaScale};

    fn base() -> Dataset {
        replica("citeseer", ReplicaScale::tiny(), 0)
    }

    #[test]
    fn mask_features_spares_training_nodes() {
        let d = base();
        let masked = mask_features(&d, 1.0, 1);
        for &v in &d.split.train {
            assert_eq!(masked.features.row(v), d.features.row(v), "train node {v} changed");
        }
        // Every non-train node is zeroed at fraction 1.
        let train: std::collections::HashSet<usize> = d.split.train.iter().copied().collect();
        for v in 0..d.n_nodes() {
            if !train.contains(&v) {
                assert!(masked.features.row(v).iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn mask_features_fraction_is_respected() {
        let d = base();
        let masked = mask_features(&d, 0.5, 2);
        let train: std::collections::HashSet<usize> = d.split.train.iter().copied().collect();
        // Count rows that actually changed (sparse BoW rows can be all-zero
        // to begin with, which must not count as masked).
        let non_train: Vec<usize> = (0..d.n_nodes()).filter(|v| !train.contains(v)).collect();
        let changed = non_train
            .iter()
            .filter(|&&v| {
                masked.features.row(v) != d.features.row(v)
                    && masked.features.row(v).iter().all(|&x| x == 0.0)
            })
            .count();
        let nonzero_before =
            non_train.iter().filter(|&&v| d.features.row(v).iter().any(|&x| x != 0.0)).count();
        let frac = changed as f64 / nonzero_before as f64;
        assert!((frac - 0.5).abs() < 0.1, "masked fraction {frac}");
    }

    #[test]
    fn drop_edges_thins_the_graph() {
        let d = base();
        let thinned = drop_edges(&d, 0.4, 3);
        let kept = thinned.graph.n_edges() as f64 / d.graph.n_edges() as f64;
        assert!((kept - 0.6).abs() < 0.08, "kept fraction {kept}");
        // Labels and features untouched.
        assert_eq!(thinned.features, d.features);
        assert_eq!(thinned.labels(), d.labels());
    }

    #[test]
    fn drop_edges_zero_is_identity() {
        let d = base();
        let same = drop_edges(&d, 0.0, 4);
        assert_eq!(same.graph.n_edges(), d.graph.n_edges());
    }

    #[test]
    fn limit_labels_shrinks_train() {
        let d = base();
        let limited = limit_labels(&d, 2);
        assert!(limited.split.train.len() <= 2 * d.n_classes());
        assert_eq!(limited.split.val, d.split.val);
        assert_eq!(limited.split.test, d.split.test);
    }
}
