//! Directed stochastic block model with controllable homophily and
//! direction informativeness.
//!
//! The generator samples `m` directed edges from an ordered class-pair
//! distribution `P[c_src][c_dst]`. The two knobs of interest:
//!
//! * `edge_homophily` — the diagonal mass of `P` (intra-class edges),
//! * `direction_informativeness` — the *asymmetry* of the off-diagonal
//!   mass. With the cyclic structure, inter-class edges flow from class `c`
//!   to class `(c+1) mod C` with probability `(1+d)/2` and backwards with
//!   `(1−d)/2`. At `d = 1` orientation fully determines the class pair
//!   ("blue → green" in the paper's Fig. 3); at `d = 0` orientation is a
//!   coin flip and directed modeling cannot help.

use amud_graph::DiGraph;
use rand::Rng;
use std::collections::HashSet;

/// How inter-class (heterophilous) mass is spread over class pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterClassStructure {
    /// Mass concentrated on adjacent classes in a fixed cyclic order
    /// (`c → c±1 mod C`). Orientation can then carry class information.
    Cyclic,
    /// Mass uniform over all ordered cross-class pairs; orientation is
    /// uninformative by construction.
    Uniform,
}

/// Configuration for the directed SBM.
#[derive(Debug, Clone)]
pub struct DsbmConfig {
    pub n_nodes: usize,
    pub n_edges: usize,
    pub n_classes: usize,
    /// Target fraction of intra-class edges, in `[0, 1]`.
    pub edge_homophily: f64,
    /// Orientation asymmetry of inter-class edges, in `[0, 1]`.
    pub direction_informativeness: f64,
    pub structure: InterClassStructure,
    /// Fraction of the inter-class edge mass redirected to *uniform random*
    /// ordered class pairs, in `[0, 1]`. Real heterophilous graphs are far
    /// from perfectly structured; this knob keeps the oriented signal
    /// dominant (so AMUD still detects it) while capping how much of the
    /// label can be recovered from topology alone.
    pub topology_noise: f64,
    /// Pareto-ish degree skew: node sampling weight `(rank+1)^{-gamma}`
    /// within each class. `0.0` gives uniform degrees.
    pub degree_exponent: f64,
}

impl DsbmConfig {
    pub fn new(n_nodes: usize, n_edges: usize, n_classes: usize) -> Self {
        Self {
            n_nodes,
            n_edges,
            n_classes,
            edge_homophily: 0.5,
            direction_informativeness: 0.0,
            structure: InterClassStructure::Uniform,
            topology_noise: 0.0,
            degree_exponent: 0.0,
        }
    }

    pub fn with_homophily(mut self, h: f64) -> Self {
        assert!((0.0..=1.0).contains(&h), "homophily must be in [0,1]");
        self.edge_homophily = h;
        self
    }

    pub fn with_direction_informativeness(mut self, d: f64) -> Self {
        assert!((0.0..=1.0).contains(&d), "direction informativeness must be in [0,1]");
        self.direction_informativeness = d;
        self
    }

    pub fn with_structure(mut self, s: InterClassStructure) -> Self {
        self.structure = s;
        self
    }

    pub fn with_topology_noise(mut self, noise: f64) -> Self {
        assert!((0.0..=1.0).contains(&noise), "topology noise must be in [0,1]");
        self.topology_noise = noise;
        self
    }

    pub fn with_degree_exponent(mut self, gamma: f64) -> Self {
        assert!(gamma >= 0.0, "degree exponent must be non-negative");
        self.degree_exponent = gamma;
        self
    }

    /// The ordered class-pair distribution `P[src * C + dst]` implied by the
    /// configuration. Rows and columns index classes; entries sum to 1.
    pub fn class_pair_distribution(&self) -> Vec<f64> {
        let c = self.n_classes;
        let mut p = vec![0.0f64; c * c];
        let h = self.edge_homophily;
        // Diagonal: intra-class mass, uniform over classes.
        for k in 0..c {
            p[k * c + k] = h / c as f64;
        }
        let inter = 1.0 - h;
        if c == 1 {
            // Degenerate single-class graph: all mass is intra.
            p[0] = 1.0;
            return p;
        }
        let structured = inter * (1.0 - self.topology_noise);
        let noisy = inter * self.topology_noise;
        match self.structure {
            InterClassStructure::Cyclic => {
                let d = self.direction_informativeness;
                let per_pair = structured / c as f64;
                for k in 0..c {
                    let next = (k + 1) % c;
                    p[k * c + next] += per_pair * (1.0 + d) / 2.0;
                    p[next * c + k] += per_pair * (1.0 - d) / 2.0;
                }
            }
            InterClassStructure::Uniform => {
                let pairs = (c * (c - 1)) as f64;
                for src in 0..c {
                    for dst in 0..c {
                        if src != dst {
                            p[src * c + dst] += structured / pairs;
                        }
                    }
                }
            }
        }
        // Unstructured inter-class mass: uniform over ordered cross pairs.
        if noisy > 0.0 {
            let pairs = (c * (c - 1)) as f64;
            for src in 0..c {
                for dst in 0..c {
                    if src != dst {
                        p[src * c + dst] += noisy / pairs;
                    }
                }
            }
        }
        p
    }

    /// Generates the labelled digraph. Node labels are assigned in
    /// contiguous near-equal blocks, then edges are sampled without
    /// replacement from the class-pair distribution.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> DiGraph {
        assert!(self.n_classes >= 1, "need at least one class");
        assert!(self.n_nodes >= 2 * self.n_classes, "need at least two nodes per class");
        let n = self.n_nodes;
        let c = self.n_classes;
        // Contiguous class blocks (relabelling-invariance of every metric is
        // separately property-tested).
        let labels: Vec<usize> = (0..n).map(|v| v * c / n).collect();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); c];
        for (v, &y) in labels.iter().enumerate() {
            members[y].push(v);
        }
        // Per-class cumulative sampling weights for degree skew.
        let class_cdfs: Vec<Vec<f64>> = members
            .iter()
            .map(|nodes| {
                let mut acc = 0.0;
                nodes
                    .iter()
                    .enumerate()
                    .map(|(rank, _)| {
                        acc += (rank as f64 + 1.0).powf(-self.degree_exponent);
                        acc
                    })
                    .collect()
            })
            .collect();
        let pair_dist = self.class_pair_distribution();
        let mut pair_cdf = pair_dist.clone();
        for i in 1..pair_cdf.len() {
            pair_cdf[i] += pair_cdf[i - 1];
        }

        let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(self.n_edges);
        let mut attempts = 0usize;
        let max_attempts = self.n_edges.saturating_mul(60).max(10_000);
        while chosen.len() < self.n_edges && attempts < max_attempts {
            attempts += 1;
            let x: f64 = rng.gen();
            let pair = pair_cdf.partition_point(|&cum| cum < x).min(c * c - 1);
            let (src_class, dst_class) = (pair / c, pair % c);
            let u = sample_class_node(&members[src_class], &class_cdfs[src_class], rng);
            let v = sample_class_node(&members[dst_class], &class_cdfs[dst_class], rng);
            if u != v {
                chosen.insert((u, v));
            }
        }
        let Ok(graph) = DiGraph::from_edges(n, chosen) else {
            unreachable!("sampled endpoints come from `members`, which only holds ids < n")
        };
        let Ok(labelled) = graph.with_labels(labels, c) else {
            unreachable!("labels were built as one entry per node with values < n_classes")
        };
        labelled
    }
}

fn sample_class_node<R: Rng>(nodes: &[usize], cdf: &[f64], rng: &mut R) -> usize {
    let Some(&total) = cdf.last() else {
        unreachable!("every class block holds ≥ 2 nodes (asserted in generate)")
    };
    let x: f64 = rng.gen_range(0.0..total);
    let idx = cdf.partition_point(|&cum| cum <= x).min(nodes.len() - 1);
    nodes[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_graph::measures::edge_homophily;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn class_pair_distribution_sums_to_one() {
        for &(h, d) in &[(0.0, 0.0), (0.5, 0.5), (0.9, 1.0), (1.0, 0.3)] {
            for &s in &[InterClassStructure::Cyclic, InterClassStructure::Uniform] {
                let cfg = DsbmConfig::new(100, 500, 5)
                    .with_homophily(h)
                    .with_direction_informativeness(d)
                    .with_structure(s);
                let p = cfg.class_pair_distribution();
                let sum: f64 = p.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "sum {sum} for h={h} d={d}");
            }
        }
    }

    #[test]
    fn achieved_homophily_tracks_target() {
        for &target in &[0.1, 0.5, 0.85] {
            let cfg = DsbmConfig::new(600, 6000, 4).with_homophily(target);
            let g = cfg.generate(&mut rng(11));
            let h = edge_homophily(g.adjacency(), g.labels().unwrap());
            assert!((h - target).abs() < 0.06, "target {target}, achieved {h}");
        }
    }

    #[test]
    fn edge_count_close_to_requested() {
        let cfg = DsbmConfig::new(500, 4000, 5);
        let g = cfg.generate(&mut rng(2));
        assert!(g.n_edges() >= 3900, "got {} edges", g.n_edges());
        assert!(g.n_edges() <= 4000);
    }

    #[test]
    fn full_direction_informativeness_orients_cyclically() {
        let cfg = DsbmConfig::new(400, 4000, 4)
            .with_homophily(0.1)
            .with_direction_informativeness(1.0)
            .with_structure(InterClassStructure::Cyclic);
        let g = cfg.generate(&mut rng(3));
        let labels = g.labels().unwrap();
        let c = 4;
        let mut forward = 0usize;
        let mut backward = 0usize;
        for (u, v) in g.edges() {
            if labels[u] == labels[v] {
                continue;
            }
            if (labels[u] + 1) % c == labels[v] {
                forward += 1;
            } else if (labels[v] + 1) % c == labels[u] {
                backward += 1;
            }
        }
        assert!(forward > 0);
        assert_eq!(backward, 0, "d=1 must fully orient inter-class edges");
    }

    #[test]
    fn zero_direction_informativeness_is_balanced() {
        let cfg = DsbmConfig::new(400, 6000, 4)
            .with_homophily(0.1)
            .with_direction_informativeness(0.0)
            .with_structure(InterClassStructure::Cyclic);
        let g = cfg.generate(&mut rng(4));
        let labels = g.labels().unwrap();
        let c = 4;
        let (mut fwd, mut bwd) = (0f64, 0f64);
        for (u, v) in g.edges() {
            if (labels[u] + 1) % c == labels[v] {
                fwd += 1.0;
            } else if (labels[v] + 1) % c == labels[u] {
                bwd += 1.0;
            }
        }
        let ratio = fwd / (fwd + bwd);
        assert!((ratio - 0.5).abs() < 0.05, "orientation should be a coin flip, got {ratio}");
    }

    #[test]
    fn degree_exponent_skews_degrees() {
        let base = DsbmConfig::new(500, 5000, 2);
        let flat = base.clone().generate(&mut rng(5));
        let skewed = base.with_degree_exponent(1.0).generate(&mut rng(5));
        let max_flat = *flat.out_degrees().iter().max().unwrap();
        let max_skewed = *skewed.out_degrees().iter().max().unwrap();
        assert!(max_skewed > 2 * max_flat, "skewed max degree {max_skewed} vs flat {max_flat}");
    }

    #[test]
    fn labels_partition_evenly() {
        let cfg = DsbmConfig::new(103, 400, 5);
        let g = cfg.generate(&mut rng(6));
        let counts = g.class_counts().unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 103);
        assert!(counts.iter().all(|&c| (20..=21).contains(&c)), "{counts:?}");
    }

    #[test]
    fn topology_noise_dilutes_orientation() {
        let clean = DsbmConfig::new(400, 4000, 4)
            .with_homophily(0.1)
            .with_direction_informativeness(1.0)
            .with_structure(InterClassStructure::Cyclic);
        let noisy = clean.clone().with_topology_noise(0.6);
        let count_offcycle = |g: &amud_graph::DiGraph| {
            let labels = g.labels().unwrap();
            g.edges()
                .filter(|&(u, v)| {
                    labels[u] != labels[v]
                        && (labels[u] + 1) % 4 != labels[v]
                        && (labels[v] + 1) % 4 != labels[u]
                })
                .count()
        };
        let g_clean = clean.generate(&mut rng(12));
        let g_noisy = noisy.generate(&mut rng(12));
        assert_eq!(count_offcycle(&g_clean), 0);
        assert!(count_offcycle(&g_noisy) > 500, "noise must add off-cycle edges");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = DsbmConfig::new(200, 1000, 3).with_homophily(0.7);
        let g1 = cfg.generate(&mut rng(9));
        let g2 = cfg.generate(&mut rng(9));
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }
}
