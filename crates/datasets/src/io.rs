//! Dataset persistence: a self-contained text format for a full benchmark
//! bundle (graph + labels + features + split), so generated replicas can
//! be exported, inspected, or re-imported without re-running the DSBM.
//!
//! ```text
//! amud-dataset v1
//! name <identifier>
//! nodes <n> classes <c> features <f>
//! label <node> <class>
//! edge <src> <dst>
//! split <train|val|test> <id> <id> ...
//! feature <node> <v0> <v1> ...
//! ```

use crate::error::DatasetError;
use crate::registry::{try_spec, Dataset};
use crate::splits::Split;
use amud_graph::DiGraph;
use amud_nn::DenseMatrix;
use std::fmt::Write as _;

/// Serialises a dataset to the text format. The spec is referenced by name
/// and re-attached on load (specs are compiled in).
pub fn dataset_to_text(d: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "amud-dataset v1");
    let _ = writeln!(out, "name {}", d.name());
    let _ = writeln!(
        out,
        "nodes {} classes {} features {}",
        d.n_nodes(),
        d.n_classes(),
        d.features.cols()
    );
    for (v, &y) in d.labels().iter().enumerate() {
        let _ = writeln!(out, "label {v} {y}");
    }
    for (u, v) in d.graph.edges() {
        let _ = writeln!(out, "edge {u} {v}");
    }
    for (tag, ids) in [("train", &d.split.train), ("val", &d.split.val), ("test", &d.split.test)] {
        let _ = write!(out, "split {tag}");
        for id in ids {
            let _ = write!(out, " {id}");
        }
        let _ = writeln!(out);
    }
    for v in 0..d.n_nodes() {
        let _ = write!(out, "feature {v}");
        for x in d.features.row(v) {
            let _ = write!(out, " {x}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Parses one whitespace token as `usize`, with a line-anchored error.
fn parse_usize<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
    what: &str,
) -> Result<usize, DatasetError> {
    let token =
        parts.next().ok_or_else(|| DatasetError::parse(line_no, format!("missing {what}")))?;
    token
        .parse()
        .map_err(|_| DatasetError::parse(line_no, format!("{what} '{token}' is not an integer")))
}

/// Expects the next token to be exactly `keyword`.
fn expect_keyword<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
    keyword: &str,
) -> Result<(), DatasetError> {
    match parts.next() {
        Some(tok) if tok == keyword => Ok(()),
        Some(tok) => {
            Err(DatasetError::parse(line_no, format!("expected '{keyword}', found '{tok}'")))
        }
        None => Err(DatasetError::parse(line_no, format!("expected '{keyword}'"))),
    }
}

/// Parses the text format back into a [`Dataset`]. Truncated or garbage
/// input yields a line-anchored [`DatasetError`] — never a panic and
/// never a silently partial dataset.
pub fn dataset_from_text(text: &str) -> Result<Dataset, DatasetError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == "amud-dataset v1" => {}
        _ => return Err(DatasetError::parse(1, "missing 'amud-dataset v1' header")),
    }
    let mut name: Option<String> = None;
    let mut dims: Option<(usize, usize, usize)> = None; // (nodes, classes, features)
    let mut labels: Vec<usize> = Vec::new();
    let mut labeled: Vec<bool> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut split = Split { train: Vec::new(), val: Vec::new(), test: Vec::new() };
    let mut split_seen = [false; 3]; // train, val, test records present
    let mut feature_rows: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut has_feature: Vec<bool> = Vec::new();

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or_default();
        // Every record except `name` needs the `nodes` header first so it
        // can be bounds-checked immediately.
        let require_dims = |dims: Option<(usize, usize, usize)>| {
            dims.ok_or_else(|| {
                DatasetError::parse(
                    line_no,
                    format!("'{keyword}' record before the 'nodes … classes … features …' header"),
                )
            })
        };
        match keyword {
            "name" => {
                let value = parts
                    .next()
                    .ok_or_else(|| DatasetError::parse(line_no, "missing dataset name"))?;
                name = Some(value.to_string());
            }
            "nodes" => {
                if dims.is_some() {
                    return Err(DatasetError::parse(line_no, "duplicate 'nodes' header"));
                }
                let n = parse_usize(&mut parts, line_no, "node count")?;
                expect_keyword(&mut parts, line_no, "classes")?;
                let c = parse_usize(&mut parts, line_no, "class count")?;
                expect_keyword(&mut parts, line_no, "features")?;
                let f = parse_usize(&mut parts, line_no, "feature count")?;
                if c == 0 {
                    return Err(DatasetError::parse(line_no, "class count must be >= 1"));
                }
                dims = Some((n, c, f));
                labels = vec![0usize; n];
                labeled = vec![false; n];
                has_feature = vec![false; n];
            }
            "label" => {
                let (n, c, _) = require_dims(dims)?;
                let v = parse_usize(&mut parts, line_no, "node id")?;
                let y = parse_usize(&mut parts, line_no, "class id")?;
                if v >= n {
                    return Err(DatasetError::parse(
                        line_no,
                        format!("node id {v} out of range for {n} nodes"),
                    ));
                }
                if y >= c {
                    return Err(DatasetError::parse(
                        line_no,
                        format!("class id {y} out of range for {c} classes"),
                    ));
                }
                labels[v] = y;
                labeled[v] = true;
            }
            "edge" => {
                let (n, _, _) = require_dims(dims)?;
                let u = parse_usize(&mut parts, line_no, "source node id")?;
                let v = parse_usize(&mut parts, line_no, "target node id")?;
                if u >= n || v >= n {
                    return Err(DatasetError::parse(
                        line_no,
                        format!("edge ({u}, {v}) out of range for {n} nodes"),
                    ));
                }
                edges.push((u, v));
            }
            "split" => {
                let (n, _, _) = require_dims(dims)?;
                let which = parts
                    .next()
                    .ok_or_else(|| DatasetError::parse(line_no, "missing split kind"))?;
                let mut ids = Vec::new();
                for tok in parts {
                    let id: usize = tok.parse().map_err(|_| {
                        DatasetError::parse(line_no, format!("split id '{tok}' is not an integer"))
                    })?;
                    if id >= n {
                        return Err(DatasetError::parse(
                            line_no,
                            format!("split id {id} out of range for {n} nodes"),
                        ));
                    }
                    ids.push(id);
                }
                match which {
                    "train" => {
                        split.train = ids;
                        split_seen[0] = true;
                    }
                    "val" => {
                        split.val = ids;
                        split_seen[1] = true;
                    }
                    "test" => {
                        split.test = ids;
                        split_seen[2] = true;
                    }
                    other => {
                        return Err(DatasetError::parse(
                            line_no,
                            format!("unknown split kind '{other}' (train|val|test)"),
                        ))
                    }
                }
            }
            "feature" => {
                let (n, _, f) = require_dims(dims)?;
                let v = parse_usize(&mut parts, line_no, "node id")?;
                if v >= n {
                    return Err(DatasetError::parse(
                        line_no,
                        format!("node id {v} out of range for {n} nodes"),
                    ));
                }
                let mut row = Vec::with_capacity(f);
                for tok in parts {
                    let x: f32 = tok.parse().map_err(|_| {
                        DatasetError::parse(
                            line_no,
                            format!("feature value '{tok}' is not a number"),
                        )
                    })?;
                    if !x.is_finite() {
                        return Err(DatasetError::parse(
                            line_no,
                            format!("feature value '{tok}' is not finite"),
                        ));
                    }
                    row.push(x);
                }
                if row.len() != f {
                    return Err(DatasetError::parse(
                        line_no,
                        format!("feature row has {} value(s), expected {f}", row.len()),
                    ));
                }
                feature_rows.push((v, row));
                has_feature[v] = true;
            }
            other => return Err(DatasetError::parse(line_no, format!("unknown record '{other}'"))),
        }
    }

    let name = name.ok_or_else(|| DatasetError::parse(1, "missing 'name' record"))?;
    let (n, c, f) = dims
        .ok_or_else(|| DatasetError::parse(1, "missing 'nodes … classes … features …' header"))?;
    // Completeness: a file that merely *stops* (half-written, truncated)
    // must not come back as a silently partial dataset. Errors anchor to
    // the last line, where the missing records would have been.
    let end = text.lines().count().max(1);
    if let Some(v) = labeled.iter().position(|&seen| !seen) {
        return Err(DatasetError::parse(end, format!("node {v} has no 'label' record")));
    }
    if let Some(v) = has_feature.iter().position(|&seen| !seen) {
        return Err(DatasetError::parse(end, format!("node {v} has no 'feature' record")));
    }
    for (tag, seen) in ["train", "val", "test"].iter().zip(split_seen) {
        if !seen {
            return Err(DatasetError::parse(end, format!("missing 'split {tag}' record")));
        }
    }
    let spec = try_spec(&name)?;
    let graph = DiGraph::from_edges(n, edges)?.with_labels(labels, c)?;
    let mut features = DenseMatrix::zeros(n, f);
    for (v, row) in feature_rows {
        features.row_mut(v).copy_from_slice(&row);
    }
    Ok(Dataset { spec, graph, features, split })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{replica, ReplicaScale};

    #[test]
    fn roundtrip_preserves_everything() {
        let d = replica("texas", ReplicaScale::tiny(), 5);
        let text = dataset_to_text(&d);
        let back = dataset_from_text(&text).unwrap();
        assert_eq!(back.name(), d.name());
        assert_eq!(back.n_nodes(), d.n_nodes());
        assert_eq!(back.graph.edges().collect::<Vec<_>>(), d.graph.edges().collect::<Vec<_>>());
        assert_eq!(back.labels(), d.labels());
        assert_eq!(back.split, d.split);
        // f32 text roundtrip is exact with Rust's shortest-representation
        // formatting.
        assert_eq!(back.features, d.features);
    }

    #[test]
    fn version_line_is_mandatory() {
        match dataset_from_text("name texas\n") {
            Err(DatasetError::Parse { line: 1, reason }) => {
                assert!(reason.contains("header"), "{reason}")
            }
            other => panic!("expected a line-1 parse error, got {other:?}"),
        }
    }

    #[test]
    fn feature_width_is_validated() {
        let d = replica("texas", ReplicaScale::tiny(), 6);
        let mut text = dataset_to_text(&d);
        text.push_str("feature 0 1.0\n"); // wrong width
        assert!(matches!(dataset_from_text(&text), Err(DatasetError::Parse { .. })));
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let d = replica("texas", ReplicaScale::tiny(), 6);
        let text = dataset_to_text(&d);
        // Cut mid-keyword: the parser must reject the ragged record, not
        // return a partial dataset or panic.
        let at = text.find("\nsplit ").unwrap();
        let cut = &text[..at + "\nspl".len()];
        assert!(matches!(dataset_from_text(cut), Err(DatasetError::Parse { .. })));
    }

    #[test]
    fn cleanly_truncated_input_is_still_rejected() {
        // A file cut exactly at a line boundary parses record-by-record
        // without a syntax error — the completeness check must catch the
        // missing tail instead of returning a partial dataset.
        let d = replica("texas", ReplicaScale::tiny(), 6);
        let text = dataset_to_text(&d);
        let at = text.find("\nfeature 1 ").unwrap();
        let cut = &text[..at + 1]; // ends after the "feature 0 …" line
        match dataset_from_text(cut) {
            Err(DatasetError::Parse { reason, .. }) => {
                assert!(reason.contains("no 'feature' record"), "{reason}")
            }
            other => panic!("expected a completeness error, got {other:?}"),
        }
        // Same for a file that stops before the split records.
        let at = text.find("\nsplit ").unwrap();
        let cut = &text[..at + 1];
        match dataset_from_text(cut) {
            Err(DatasetError::Parse { reason, .. }) => {
                assert!(reason.contains("record"), "{reason}")
            }
            other => panic!("expected a completeness error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_tokens_carry_line_numbers() {
        let text = "amud-dataset v1\nname texas\nnodes 3 classes 2 features 1\nlabel zero 1\n";
        match dataset_from_text(text) {
            Err(DatasetError::Parse { line: 4, reason }) => {
                assert!(reason.contains("zero"), "{reason}")
            }
            other => panic!("expected a line-4 parse error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_records_are_rejected() {
        let base = "amud-dataset v1\nname texas\nnodes 3 classes 2 features 1\n";
        for bad in [
            "label 9 0\n",     // node out of range
            "label 0 7\n",     // class out of range
            "edge 0 9\n",      // edge endpoint out of range
            "split train 9\n", // split id out of range
            "feature 9 1.0\n", // feature node out of range
            "feature 0 NaN\n", // non-finite feature value
            "wibble 1 2\n",    // unknown record
        ] {
            let text = format!("{base}{bad}");
            assert!(
                matches!(dataset_from_text(&text), Err(DatasetError::Parse { line: 4, .. })),
                "input {bad:?} must fail on line 4"
            );
        }
    }

    #[test]
    fn records_before_the_header_are_rejected() {
        let text = "amud-dataset v1\nname texas\nlabel 0 0\n";
        assert!(matches!(dataset_from_text(text), Err(DatasetError::Parse { line: 3, .. })));
    }

    #[test]
    fn unknown_dataset_name_is_typed() {
        let text = "amud-dataset v1\nname not_a_dataset\nnodes 2 classes 2 features 1\n\
                    label 0 0\nlabel 1 1\nedge 0 1\nsplit train 0\nsplit val 1\nsplit test\n\
                    feature 0 1\nfeature 1 0\n";
        assert!(matches!(dataset_from_text(text), Err(DatasetError::UnknownDataset { .. })));
    }
}
