//! Dataset persistence: a self-contained text format for a full benchmark
//! bundle (graph + labels + features + split), so generated replicas can
//! be exported, inspected, or re-imported without re-running the DSBM.
//!
//! ```text
//! amud-dataset v1
//! name <identifier>
//! nodes <n> classes <c> features <f>
//! label <node> <class>
//! edge <src> <dst>
//! split <train|val|test> <id> <id> ...
//! feature <node> <v0> <v1> ...
//! ```

use crate::registry::{spec, Dataset};
use crate::splits::Split;
use amud_graph::{DiGraph, GraphError};
use amud_nn::DenseMatrix;
use std::fmt::Write as _;

/// Serialises a dataset to the text format. The spec is referenced by name
/// and re-attached on load (specs are compiled in).
pub fn dataset_to_text(d: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "amud-dataset v1");
    let _ = writeln!(out, "name {}", d.name());
    let _ = writeln!(
        out,
        "nodes {} classes {} features {}",
        d.n_nodes(),
        d.n_classes(),
        d.features.cols()
    );
    for (v, &y) in d.labels().iter().enumerate() {
        let _ = writeln!(out, "label {v} {y}");
    }
    for (u, v) in d.graph.edges() {
        let _ = writeln!(out, "edge {u} {v}");
    }
    for (tag, ids) in [("train", &d.split.train), ("val", &d.split.val), ("test", &d.split.test)] {
        let _ = write!(out, "split {tag}");
        for id in ids {
            let _ = write!(out, " {id}");
        }
        let _ = writeln!(out);
    }
    for v in 0..d.n_nodes() {
        let _ = write!(out, "feature {v}");
        for x in d.features.row(v) {
            let _ = write!(out, " {x}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Parses the text format back into a [`Dataset`].
pub fn dataset_from_text(text: &str) -> Result<Dataset, GraphError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("amud-dataset v1") {
        return Err(GraphError::EmptyGraph);
    }
    let mut name = String::new();
    let mut n = 0usize;
    let mut c = 0usize;
    let mut f = 0usize;
    let mut labels: Vec<usize> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut split = Split { train: Vec::new(), val: Vec::new(), test: Vec::new() };
    let mut feature_rows: Vec<(usize, Vec<f32>)> = Vec::new();

    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("name") => name = parts.next().unwrap_or_default().to_string(),
            Some("nodes") => {
                n = parts.next().and_then(|s| s.parse().ok()).ok_or(GraphError::EmptyGraph)?;
                let _ = parts.next(); // "classes"
                c = parts.next().and_then(|s| s.parse().ok()).ok_or(GraphError::EmptyGraph)?;
                let _ = parts.next(); // "features"
                f = parts.next().and_then(|s| s.parse().ok()).ok_or(GraphError::EmptyGraph)?;
                labels = vec![0usize; n];
            }
            Some("label") => {
                let v: usize =
                    parts.next().and_then(|s| s.parse().ok()).ok_or(GraphError::EmptyGraph)?;
                let y: usize =
                    parts.next().and_then(|s| s.parse().ok()).ok_or(GraphError::EmptyGraph)?;
                if v >= n {
                    return Err(GraphError::NodeOutOfBounds { node: v, n });
                }
                labels[v] = y;
            }
            Some("edge") => {
                let u: usize =
                    parts.next().and_then(|s| s.parse().ok()).ok_or(GraphError::EmptyGraph)?;
                let v: usize =
                    parts.next().and_then(|s| s.parse().ok()).ok_or(GraphError::EmptyGraph)?;
                edges.push((u, v));
            }
            Some("split") => {
                let which = parts.next().ok_or(GraphError::EmptyGraph)?;
                let ids: Vec<usize> = parts.filter_map(|s| s.parse().ok()).collect();
                match which {
                    "train" => split.train = ids,
                    "val" => split.val = ids,
                    "test" => split.test = ids,
                    _ => return Err(GraphError::EmptyGraph),
                }
            }
            Some("feature") => {
                let v: usize =
                    parts.next().and_then(|s| s.parse().ok()).ok_or(GraphError::EmptyGraph)?;
                let row: Vec<f32> = parts.filter_map(|s| s.parse().ok()).collect();
                if row.len() != f {
                    return Err(GraphError::DimensionMismatch {
                        expected: (1, f),
                        got: (1, row.len()),
                    });
                }
                feature_rows.push((v, row));
            }
            _ => return Err(GraphError::EmptyGraph),
        }
    }

    let graph = DiGraph::from_edges(n, edges)?.with_labels(labels, c)?;
    let mut features = DenseMatrix::zeros(n, f);
    for (v, row) in feature_rows {
        if v >= n {
            return Err(GraphError::NodeOutOfBounds { node: v, n });
        }
        features.row_mut(v).copy_from_slice(&row);
    }
    Ok(Dataset { spec: spec(&name), graph, features, split })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{replica, ReplicaScale};

    #[test]
    fn roundtrip_preserves_everything() {
        let d = replica("texas", ReplicaScale::tiny(), 5);
        let text = dataset_to_text(&d);
        let back = dataset_from_text(&text).unwrap();
        assert_eq!(back.name(), d.name());
        assert_eq!(back.n_nodes(), d.n_nodes());
        assert_eq!(back.graph.edges().collect::<Vec<_>>(), d.graph.edges().collect::<Vec<_>>());
        assert_eq!(back.labels(), d.labels());
        assert_eq!(back.split, d.split);
        // f32 text roundtrip is exact with Rust's shortest-representation
        // formatting.
        assert_eq!(back.features, d.features);
    }

    #[test]
    fn version_line_is_mandatory() {
        assert!(dataset_from_text("name texas\n").is_err());
    }

    #[test]
    fn feature_width_is_validated() {
        let d = replica("texas", ReplicaScale::tiny(), 6);
        let mut text = dataset_to_text(&d);
        text.push_str("feature 0 1.0\n"); // wrong width
        assert!(dataset_from_text(&text).is_err());
    }
}
