//! Train/validation/test splits following the paper's protocols (Table II).
//!
//! Two protocols appear in the paper:
//!
//! * **count-based** — e.g. CoraML's `140/500/2355`: a fixed number of
//!   training nodes (balanced per class where divisible), a fixed validation
//!   pool, the rest (or a fixed count) for testing;
//! * **fraction-based** — e.g. WebKB's `48%/32%/20%`.

use rand::seq::SliceRandom;
use rand::Rng;

/// Node index sets for semi-supervised training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
    pub test: Vec<usize>,
}

/// How to carve a dataset into train/val/test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitSpec {
    /// Fixed node counts. Training nodes are drawn class-balanced
    /// (`train / n_classes` per class, rounded down, topped up arbitrarily).
    Counts { train: usize, val: usize, test: usize },
    /// Fractions of all nodes (must sum to ≤ 1).
    Fractions { train: f64, val: f64, test: f64 },
}

impl Split {
    /// Materialises a split over `n` nodes with the given labels.
    ///
    /// # Panics
    /// Panics if the spec asks for more nodes than exist.
    pub fn generate<R: Rng>(
        spec: SplitSpec,
        labels: &[usize],
        n_classes: usize,
        rng: &mut R,
    ) -> Split {
        let n = labels.len();
        match spec {
            SplitSpec::Counts { train, val, test } => {
                assert!(train + val + test <= n, "split counts exceed node count");
                // Class-balanced training selection.
                let per_class = train / n_classes.max(1);
                let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(rng);
                for &v in &order {
                    by_class[labels[v]].push(v);
                }
                let mut train_set = Vec::with_capacity(train);
                for class_nodes in &by_class {
                    train_set.extend(class_nodes.iter().take(per_class));
                }
                // Top up from the shuffled order if rounding left a deficit.
                let chosen: std::collections::HashSet<usize> = train_set.iter().copied().collect();
                for &v in &order {
                    if train_set.len() >= train {
                        break;
                    }
                    if !chosen.contains(&v) {
                        train_set.push(v);
                    }
                }
                let train_mask: std::collections::HashSet<usize> =
                    train_set.iter().copied().collect();
                let rest: Vec<usize> =
                    order.iter().copied().filter(|v| !train_mask.contains(v)).collect();
                let val_set = rest[..val].to_vec();
                let test_set = rest[val..val + test].to_vec();
                Split { train: train_set, val: val_set, test: test_set }
            }
            SplitSpec::Fractions { train, val, test } => {
                assert!(train + val + test <= 1.0 + 1e-9, "split fractions must sum to at most 1");
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(rng);
                let n_train = (train * n as f64).round() as usize;
                let n_val = (val * n as f64).round() as usize;
                let n_test = ((test * n as f64).round() as usize).min(n - n_train - n_val);
                Split {
                    train: order[..n_train].to_vec(),
                    val: order[n_train..n_train + n_val].to_vec(),
                    test: order[n_train + n_val..n_train + n_val + n_test].to_vec(),
                }
            }
        }
    }

    /// Total number of assigned nodes.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks the three sets are pairwise disjoint (debug assertion helper).
    pub fn is_disjoint(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.train.iter().chain(&self.val).chain(&self.test).all(|&v| seen.insert(v))
    }

    /// Restricts training labels to the first `k` nodes of each class —
    /// the Fig. 7 label-sparsity stressor.
    pub fn with_labels_per_class(&self, labels: &[usize], n_classes: usize, k: usize) -> Split {
        let mut taken = vec![0usize; n_classes];
        let train = self
            .train
            .iter()
            .copied()
            .filter(|&v| {
                if taken[labels[v]] < k {
                    taken[labels[v]] += 1;
                    true
                } else {
                    false
                }
            })
            .collect();
        Split { train, val: self.val.clone(), test: self.test.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn labels(n: usize, c: usize) -> Vec<usize> {
        (0..n).map(|v| v % c).collect()
    }

    #[test]
    fn counts_split_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let labels = labels(1000, 5);
        let s = Split::generate(
            SplitSpec::Counts { train: 100, val: 200, test: 600 },
            &labels,
            5,
            &mut rng,
        );
        assert_eq!(s.train.len(), 100);
        assert_eq!(s.val.len(), 200);
        assert_eq!(s.test.len(), 600);
        assert!(s.is_disjoint());
    }

    #[test]
    fn counts_split_is_class_balanced() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let labels = labels(500, 5);
        let s = Split::generate(
            SplitSpec::Counts { train: 50, val: 100, test: 300 },
            &labels,
            5,
            &mut rng,
        );
        let mut per_class = vec![0usize; 5];
        for &v in &s.train {
            per_class[labels[v]] += 1;
        }
        assert!(per_class.iter().all(|&c| c == 10), "{per_class:?}");
    }

    #[test]
    fn fractions_split_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let labels = labels(250, 5);
        let s = Split::generate(
            SplitSpec::Fractions { train: 0.48, val: 0.32, test: 0.20 },
            &labels,
            5,
            &mut rng,
        );
        assert_eq!(s.train.len(), 120);
        assert_eq!(s.val.len(), 80);
        assert_eq!(s.test.len(), 50);
        assert!(s.is_disjoint());
    }

    #[test]
    fn label_sparsity_reduces_train_only() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let labels = labels(300, 3);
        let s = Split::generate(
            SplitSpec::Fractions { train: 0.5, val: 0.25, test: 0.25 },
            &labels,
            3,
            &mut rng,
        );
        let sparse = s.with_labels_per_class(&labels, 3, 5);
        assert_eq!(sparse.train.len(), 15);
        assert_eq!(sparse.val, s.val);
        assert_eq!(sparse.test, s.test);
    }

    #[test]
    #[should_panic(expected = "exceed node count")]
    fn oversized_counts_panic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let labels = labels(10, 2);
        let _ =
            Split::generate(SplitSpec::Counts { train: 8, val: 8, test: 8 }, &labels, 2, &mut rng);
    }
}
