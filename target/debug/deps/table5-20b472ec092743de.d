/root/repo/target/debug/deps/table5-20b472ec092743de.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-20b472ec092743de: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
