/root/repo/target/debug/deps/amud-97d52acbe22e37c0.d: src/bin/amud.rs

/root/repo/target/debug/deps/amud-97d52acbe22e37c0: src/bin/amud.rs

src/bin/amud.rs:
