/root/repo/target/debug/deps/amud_models-4271a136b828f09c.d: crates/models/src/lib.rs crates/models/src/a2dug.rs crates/models/src/aero.rs crates/models/src/appnp.rs crates/models/src/bernnet.rs crates/models/src/common.rs crates/models/src/dgcn.rs crates/models/src/digcn.rs crates/models/src/dimpa.rs crates/models/src/dirgnn.rs crates/models/src/gat.rs crates/models/src/gcn.rs crates/models/src/glognn.rs crates/models/src/gprgnn.rs crates/models/src/h2gcn.rs crates/models/src/jacobi.rs crates/models/src/labelprop.rs crates/models/src/linkx.rs crates/models/src/magnet.rs crates/models/src/mgc.rs crates/models/src/mlp.rs crates/models/src/nste.rs crates/models/src/registry.rs crates/models/src/sage.rs crates/models/src/sgc.rs Cargo.toml

/root/repo/target/debug/deps/libamud_models-4271a136b828f09c.rmeta: crates/models/src/lib.rs crates/models/src/a2dug.rs crates/models/src/aero.rs crates/models/src/appnp.rs crates/models/src/bernnet.rs crates/models/src/common.rs crates/models/src/dgcn.rs crates/models/src/digcn.rs crates/models/src/dimpa.rs crates/models/src/dirgnn.rs crates/models/src/gat.rs crates/models/src/gcn.rs crates/models/src/glognn.rs crates/models/src/gprgnn.rs crates/models/src/h2gcn.rs crates/models/src/jacobi.rs crates/models/src/labelprop.rs crates/models/src/linkx.rs crates/models/src/magnet.rs crates/models/src/mgc.rs crates/models/src/mlp.rs crates/models/src/nste.rs crates/models/src/registry.rs crates/models/src/sage.rs crates/models/src/sgc.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/a2dug.rs:
crates/models/src/aero.rs:
crates/models/src/appnp.rs:
crates/models/src/bernnet.rs:
crates/models/src/common.rs:
crates/models/src/dgcn.rs:
crates/models/src/digcn.rs:
crates/models/src/dimpa.rs:
crates/models/src/dirgnn.rs:
crates/models/src/gat.rs:
crates/models/src/gcn.rs:
crates/models/src/glognn.rs:
crates/models/src/gprgnn.rs:
crates/models/src/h2gcn.rs:
crates/models/src/jacobi.rs:
crates/models/src/labelprop.rs:
crates/models/src/linkx.rs:
crates/models/src/magnet.rs:
crates/models/src/mgc.rs:
crates/models/src/mlp.rs:
crates/models/src/nste.rs:
crates/models/src/registry.rs:
crates/models/src/sage.rs:
crates/models/src/sgc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
