/root/repo/target/debug/deps/tune-355c6d65a18f4e49.d: crates/bench/src/bin/tune.rs Cargo.toml

/root/repo/target/debug/deps/libtune-355c6d65a18f4e49.rmeta: crates/bench/src/bin/tune.rs Cargo.toml

crates/bench/src/bin/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
