/root/repo/target/debug/deps/amud_graph-666542a1d06d2b6b.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

/root/repo/target/debug/deps/libamud_graph-666542a1d06d2b6b.rlib: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

/root/repo/target/debug/deps/libamud_graph-666542a1d06d2b6b.rmeta: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/digraph.rs:
crates/graph/src/generate.rs:
crates/graph/src/io.rs:
crates/graph/src/measures.rs:
crates/graph/src/patterns.rs:
