/root/repo/target/debug/deps/amud_train-3815f9517f23ba13.d: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

/root/repo/target/debug/deps/amud_train-3815f9517f23ba13: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/data.rs:
crates/train/src/error.rs:
crates/train/src/faults.rs:
crates/train/src/grid.rs:
crates/train/src/metrics.rs:
crates/train/src/model.rs:
crates/train/src/trainer.rs:
