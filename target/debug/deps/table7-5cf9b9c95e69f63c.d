/root/repo/target/debug/deps/table7-5cf9b9c95e69f63c.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-5cf9b9c95e69f63c: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
