/root/repo/target/debug/deps/reproducibility-05df1c7c165dda3d.d: tests/reproducibility.rs Cargo.toml

/root/repo/target/debug/deps/libreproducibility-05df1c7c165dda3d.rmeta: tests/reproducibility.rs Cargo.toml

tests/reproducibility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
