/root/repo/target/debug/deps/fig5-9664d42592a106af.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-9664d42592a106af.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
