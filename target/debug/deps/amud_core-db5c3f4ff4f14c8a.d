/root/repo/target/debug/deps/amud_core-db5c3f4ff4f14c8a.d: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs Cargo.toml

/root/repo/target/debug/deps/libamud_core-db5c3f4ff4f14c8a.rmeta: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adpa.rs:
crates/core/src/amud.rs:
crates/core/src/paradigm.rs:
crates/core/src/propagation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
