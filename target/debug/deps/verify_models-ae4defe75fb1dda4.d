/root/repo/target/debug/deps/verify_models-ae4defe75fb1dda4.d: tests/verify_models.rs

/root/repo/target/debug/deps/verify_models-ae4defe75fb1dda4: tests/verify_models.rs

tests/verify_models.rs:
