/root/repo/target/debug/deps/criterion-86fa532a2ca07324.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-86fa532a2ca07324.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
