/root/repo/target/debug/deps/amud_train-31ff49c3109b021c.d: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

/root/repo/target/debug/deps/libamud_train-31ff49c3109b021c.rlib: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

/root/repo/target/debug/deps/libamud_train-31ff49c3109b021c.rmeta: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/data.rs:
crates/train/src/error.rs:
crates/train/src/faults.rs:
crates/train/src/grid.rs:
crates/train/src/metrics.rs:
crates/train/src/model.rs:
crates/train/src/trainer.rs:
