/root/repo/target/debug/deps/table1-045e17814eb41841.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-045e17814eb41841: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
