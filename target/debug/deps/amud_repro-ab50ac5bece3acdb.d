/root/repo/target/debug/deps/amud_repro-ab50ac5bece3acdb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamud_repro-ab50ac5bece3acdb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
