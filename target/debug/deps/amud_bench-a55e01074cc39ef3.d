/root/repo/target/debug/deps/amud_bench-a55e01074cc39ef3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libamud_bench-a55e01074cc39ef3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libamud_bench-a55e01074cc39ef3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
