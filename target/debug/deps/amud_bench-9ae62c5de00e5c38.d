/root/repo/target/debug/deps/amud_bench-9ae62c5de00e5c38.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamud_bench-9ae62c5de00e5c38.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
