/root/repo/target/debug/deps/reproducibility-4a64a3c056ea5888.d: tests/reproducibility.rs

/root/repo/target/debug/deps/reproducibility-4a64a3c056ea5888: tests/reproducibility.rs

tests/reproducibility.rs:
