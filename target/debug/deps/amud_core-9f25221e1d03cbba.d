/root/repo/target/debug/deps/amud_core-9f25221e1d03cbba.d: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

/root/repo/target/debug/deps/amud_core-9f25221e1d03cbba: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

crates/core/src/lib.rs:
crates/core/src/adpa.rs:
crates/core/src/amud.rs:
crates/core/src/paradigm.rs:
crates/core/src/propagation.rs:
