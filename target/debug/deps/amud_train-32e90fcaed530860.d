/root/repo/target/debug/deps/amud_train-32e90fcaed530860.d: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libamud_train-32e90fcaed530860.rmeta: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs Cargo.toml

crates/train/src/lib.rs:
crates/train/src/data.rs:
crates/train/src/error.rs:
crates/train/src/faults.rs:
crates/train/src/grid.rs:
crates/train/src/metrics.rs:
crates/train/src/model.rs:
crates/train/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
