/root/repo/target/debug/deps/fig2-97eeb42ad45870dd.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-97eeb42ad45870dd: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
