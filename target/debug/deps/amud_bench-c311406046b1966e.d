/root/repo/target/debug/deps/amud_bench-c311406046b1966e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/amud_bench-c311406046b1966e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
