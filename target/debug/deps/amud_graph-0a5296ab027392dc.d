/root/repo/target/debug/deps/amud_graph-0a5296ab027392dc.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs Cargo.toml

/root/repo/target/debug/deps/libamud_graph-0a5296ab027392dc.rmeta: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/digraph.rs:
crates/graph/src/generate.rs:
crates/graph/src/io.rs:
crates/graph/src/measures.rs:
crates/graph/src/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
