/root/repo/target/debug/deps/tune-1388303af2391526.d: crates/bench/src/bin/tune.rs

/root/repo/target/debug/deps/tune-1388303af2391526: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:
