/root/repo/target/debug/deps/verify_models-1882f589fa5cc54e.d: tests/verify_models.rs Cargo.toml

/root/repo/target/debug/deps/libverify_models-1882f589fa5cc54e.rmeta: tests/verify_models.rs Cargo.toml

tests/verify_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
