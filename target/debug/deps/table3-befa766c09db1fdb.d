/root/repo/target/debug/deps/table3-befa766c09db1fdb.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-befa766c09db1fdb.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
