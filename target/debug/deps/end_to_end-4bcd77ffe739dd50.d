/root/repo/target/debug/deps/end_to_end-4bcd77ffe739dd50.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4bcd77ffe739dd50: tests/end_to_end.rs

tests/end_to_end.rs:
