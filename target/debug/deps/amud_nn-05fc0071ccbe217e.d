/root/repo/target/debug/deps/amud_nn-05fc0071ccbe217e.d: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs

/root/repo/target/debug/deps/libamud_nn-05fc0071ccbe217e.rlib: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs

/root/repo/target/debug/deps/libamud_nn-05fc0071ccbe217e.rmeta: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs

crates/nn/src/lib.rs:
crates/nn/src/complex.rs:
crates/nn/src/linear.rs:
crates/nn/src/matrix.rs:
crates/nn/src/optim.rs:
crates/nn/src/tape.rs:
crates/nn/src/verify.rs:
