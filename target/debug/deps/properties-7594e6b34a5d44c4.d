/root/repo/target/debug/deps/properties-7594e6b34a5d44c4.d: tests/properties.rs

/root/repo/target/debug/deps/properties-7594e6b34a5d44c4: tests/properties.rs

tests/properties.rs:
