/root/repo/target/debug/deps/amud_lint-0e4b0fb0cb434ad3.d: crates/lint/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamud_lint-0e4b0fb0cb434ad3.rmeta: crates/lint/src/lib.rs Cargo.toml

crates/lint/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
