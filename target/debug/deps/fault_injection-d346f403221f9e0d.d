/root/repo/target/debug/deps/fault_injection-d346f403221f9e0d.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-d346f403221f9e0d: tests/fault_injection.rs

tests/fault_injection.rs:

# env-dep:CARGO_BIN_EXE_amud=/root/repo/target/debug/amud
