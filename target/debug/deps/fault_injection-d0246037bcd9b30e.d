/root/repo/target/debug/deps/fault_injection-d0246037bcd9b30e.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-d0246037bcd9b30e.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_amud=placeholder:amud
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
