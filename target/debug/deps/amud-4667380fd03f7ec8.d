/root/repo/target/debug/deps/amud-4667380fd03f7ec8.d: src/bin/amud.rs Cargo.toml

/root/repo/target/debug/deps/libamud-4667380fd03f7ec8.rmeta: src/bin/amud.rs Cargo.toml

src/bin/amud.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
