/root/repo/target/debug/deps/spgemm-024d49f7e878b7e7.d: crates/bench/benches/spgemm.rs Cargo.toml

/root/repo/target/debug/deps/libspgemm-024d49f7e878b7e7.rmeta: crates/bench/benches/spgemm.rs Cargo.toml

crates/bench/benches/spgemm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
