/root/repo/target/debug/deps/rand_distr-7fdd97591569ab1f.d: crates/compat/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-7fdd97591569ab1f.rlib: crates/compat/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-7fdd97591569ab1f.rmeta: crates/compat/rand_distr/src/lib.rs

crates/compat/rand_distr/src/lib.rs:
