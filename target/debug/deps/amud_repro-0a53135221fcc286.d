/root/repo/target/debug/deps/amud_repro-0a53135221fcc286.d: src/lib.rs

/root/repo/target/debug/deps/libamud_repro-0a53135221fcc286.rlib: src/lib.rs

/root/repo/target/debug/deps/libamud_repro-0a53135221fcc286.rmeta: src/lib.rs

src/lib.rs:
