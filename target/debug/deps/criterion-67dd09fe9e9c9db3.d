/root/repo/target/debug/deps/criterion-67dd09fe9e9c9db3.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-67dd09fe9e9c9db3.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-67dd09fe9e9c9db3.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
