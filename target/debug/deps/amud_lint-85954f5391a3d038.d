/root/repo/target/debug/deps/amud_lint-85954f5391a3d038.d: crates/lint/src/lib.rs

/root/repo/target/debug/deps/amud_lint-85954f5391a3d038: crates/lint/src/lib.rs

crates/lint/src/lib.rs:
