/root/repo/target/debug/deps/gradient_properties-aaed78a08f303abf.d: crates/nn/tests/gradient_properties.rs Cargo.toml

/root/repo/target/debug/deps/libgradient_properties-aaed78a08f303abf.rmeta: crates/nn/tests/gradient_properties.rs Cargo.toml

crates/nn/tests/gradient_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
