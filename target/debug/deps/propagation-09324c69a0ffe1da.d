/root/repo/target/debug/deps/propagation-09324c69a0ffe1da.d: crates/bench/benches/propagation.rs Cargo.toml

/root/repo/target/debug/deps/libpropagation-09324c69a0ffe1da.rmeta: crates/bench/benches/propagation.rs Cargo.toml

crates/bench/benches/propagation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
