/root/repo/target/debug/deps/fig5-8d520135e01dd4d0.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-8d520135e01dd4d0: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
