/root/repo/target/debug/deps/table6-fb50119087e28e16.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-fb50119087e28e16: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
