/root/repo/target/debug/deps/properties-120d443dc5d230fe.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-120d443dc5d230fe.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
