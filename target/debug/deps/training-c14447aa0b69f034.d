/root/repo/target/debug/deps/training-c14447aa0b69f034.d: crates/bench/benches/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-c14447aa0b69f034.rmeta: crates/bench/benches/training.rs Cargo.toml

crates/bench/benches/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
