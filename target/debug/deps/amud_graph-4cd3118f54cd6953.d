/root/repo/target/debug/deps/amud_graph-4cd3118f54cd6953.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

/root/repo/target/debug/deps/amud_graph-4cd3118f54cd6953: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/digraph.rs:
crates/graph/src/generate.rs:
crates/graph/src/io.rs:
crates/graph/src/measures.rs:
crates/graph/src/patterns.rs:
