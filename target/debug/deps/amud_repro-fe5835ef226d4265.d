/root/repo/target/debug/deps/amud_repro-fe5835ef226d4265.d: src/lib.rs

/root/repo/target/debug/deps/amud_repro-fe5835ef226d4265: src/lib.rs

src/lib.rs:
