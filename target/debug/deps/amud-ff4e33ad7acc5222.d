/root/repo/target/debug/deps/amud-ff4e33ad7acc5222.d: src/bin/amud.rs

/root/repo/target/debug/deps/amud-ff4e33ad7acc5222: src/bin/amud.rs

src/bin/amud.rs:
