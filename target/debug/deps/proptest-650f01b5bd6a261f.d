/root/repo/target/debug/deps/proptest-650f01b5bd6a261f.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-650f01b5bd6a261f.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
