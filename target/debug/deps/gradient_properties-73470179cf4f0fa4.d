/root/repo/target/debug/deps/gradient_properties-73470179cf4f0fa4.d: crates/nn/tests/gradient_properties.rs

/root/repo/target/debug/deps/gradient_properties-73470179cf4f0fa4: crates/nn/tests/gradient_properties.rs

crates/nn/tests/gradient_properties.rs:
