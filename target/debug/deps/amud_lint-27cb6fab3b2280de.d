/root/repo/target/debug/deps/amud_lint-27cb6fab3b2280de.d: crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libamud_lint-27cb6fab3b2280de.rmeta: crates/lint/src/main.rs Cargo.toml

crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
