/root/repo/target/debug/deps/table3-0c54602be038ea38.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-0c54602be038ea38: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
