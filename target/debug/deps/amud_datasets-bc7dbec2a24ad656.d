/root/repo/target/debug/deps/amud_datasets-bc7dbec2a24ad656.d: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs Cargo.toml

/root/repo/target/debug/deps/libamud_datasets-bc7dbec2a24ad656.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/dsbm.rs:
crates/datasets/src/error.rs:
crates/datasets/src/features.rs:
crates/datasets/src/io.rs:
crates/datasets/src/registry.rs:
crates/datasets/src/sparsify.rs:
crates/datasets/src/splits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
