/root/repo/target/debug/deps/table2-4466ba69537cfb86.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-4466ba69537cfb86: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
