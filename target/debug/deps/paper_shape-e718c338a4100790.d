/root/repo/target/debug/deps/paper_shape-e718c338a4100790.d: tests/paper_shape.rs

/root/repo/target/debug/deps/paper_shape-e718c338a4100790: tests/paper_shape.rs

tests/paper_shape.rs:
