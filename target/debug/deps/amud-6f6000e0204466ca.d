/root/repo/target/debug/deps/amud-6f6000e0204466ca.d: src/bin/amud.rs Cargo.toml

/root/repo/target/debug/deps/libamud-6f6000e0204466ca.rmeta: src/bin/amud.rs Cargo.toml

src/bin/amud.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
