/root/repo/target/debug/deps/amud_datasets-5eb1bca12a78dafa.d: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

/root/repo/target/debug/deps/libamud_datasets-5eb1bca12a78dafa.rlib: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

/root/repo/target/debug/deps/libamud_datasets-5eb1bca12a78dafa.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dsbm.rs:
crates/datasets/src/error.rs:
crates/datasets/src/features.rs:
crates/datasets/src/io.rs:
crates/datasets/src/registry.rs:
crates/datasets/src/sparsify.rs:
crates/datasets/src/splits.rs:
