/root/repo/target/debug/deps/amud_nn-df232f702b09500b.d: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs

/root/repo/target/debug/deps/amud_nn-df232f702b09500b: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs

crates/nn/src/lib.rs:
crates/nn/src/complex.rs:
crates/nn/src/linear.rs:
crates/nn/src/matrix.rs:
crates/nn/src/optim.rs:
crates/nn/src/tape.rs:
crates/nn/src/verify.rs:
