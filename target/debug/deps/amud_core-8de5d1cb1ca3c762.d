/root/repo/target/debug/deps/amud_core-8de5d1cb1ca3c762.d: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

/root/repo/target/debug/deps/libamud_core-8de5d1cb1ca3c762.rlib: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

/root/repo/target/debug/deps/libamud_core-8de5d1cb1ca3c762.rmeta: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

crates/core/src/lib.rs:
crates/core/src/adpa.rs:
crates/core/src/amud.rs:
crates/core/src/paradigm.rs:
crates/core/src/propagation.rs:
