/root/repo/target/debug/deps/fig7-4df4b294b4935c18.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-4df4b294b4935c18: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
