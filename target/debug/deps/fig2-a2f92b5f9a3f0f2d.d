/root/repo/target/debug/deps/fig2-a2f92b5f9a3f0f2d.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-a2f92b5f9a3f0f2d.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
