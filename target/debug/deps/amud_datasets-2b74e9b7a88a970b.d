/root/repo/target/debug/deps/amud_datasets-2b74e9b7a88a970b.d: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

/root/repo/target/debug/deps/amud_datasets-2b74e9b7a88a970b: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dsbm.rs:
crates/datasets/src/error.rs:
crates/datasets/src/features.rs:
crates/datasets/src/io.rs:
crates/datasets/src/registry.rs:
crates/datasets/src/sparsify.rs:
crates/datasets/src/splits.rs:
