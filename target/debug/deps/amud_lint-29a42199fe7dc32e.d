/root/repo/target/debug/deps/amud_lint-29a42199fe7dc32e.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/amud_lint-29a42199fe7dc32e: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
