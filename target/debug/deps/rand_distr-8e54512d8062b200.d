/root/repo/target/debug/deps/rand_distr-8e54512d8062b200.d: crates/compat/rand_distr/src/lib.rs

/root/repo/target/debug/deps/librand_distr-8e54512d8062b200.rmeta: crates/compat/rand_distr/src/lib.rs

crates/compat/rand_distr/src/lib.rs:
