/root/repo/target/debug/deps/table4-30c55da5f145d698.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-30c55da5f145d698: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
