/root/repo/target/debug/deps/amud_lint-53fbae3e00a37c69.d: crates/lint/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libamud_lint-53fbae3e00a37c69.rmeta: crates/lint/src/lib.rs Cargo.toml

crates/lint/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
