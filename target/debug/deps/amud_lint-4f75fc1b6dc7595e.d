/root/repo/target/debug/deps/amud_lint-4f75fc1b6dc7595e.d: crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libamud_lint-4f75fc1b6dc7595e.rmeta: crates/lint/src/main.rs Cargo.toml

crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
