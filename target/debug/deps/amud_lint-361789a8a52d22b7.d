/root/repo/target/debug/deps/amud_lint-361789a8a52d22b7.d: crates/lint/src/lib.rs

/root/repo/target/debug/deps/libamud_lint-361789a8a52d22b7.rlib: crates/lint/src/lib.rs

/root/repo/target/debug/deps/libamud_lint-361789a8a52d22b7.rmeta: crates/lint/src/lib.rs

crates/lint/src/lib.rs:
