/root/repo/target/debug/deps/amud_nn-7a31aa64c6f90b58.d: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libamud_nn-7a31aa64c6f90b58.rmeta: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/complex.rs:
crates/nn/src/linear.rs:
crates/nn/src/matrix.rs:
crates/nn/src/optim.rs:
crates/nn/src/tape.rs:
crates/nn/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
