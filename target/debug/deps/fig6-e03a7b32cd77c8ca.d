/root/repo/target/debug/deps/fig6-e03a7b32cd77c8ca.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-e03a7b32cd77c8ca: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
