/root/repo/target/debug/examples/citation_pipeline-88d6d543159efd7a.d: examples/citation_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libcitation_pipeline-88d6d543159efd7a.rmeta: examples/citation_pipeline.rs Cargo.toml

examples/citation_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
