/root/repo/target/debug/examples/quickstart-b8bf039f4706d50f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b8bf039f4706d50f: examples/quickstart.rs

examples/quickstart.rs:
