/root/repo/target/debug/examples/amud_audit-c738b64e9100252d.d: examples/amud_audit.rs

/root/repo/target/debug/examples/amud_audit-c738b64e9100252d: examples/amud_audit.rs

examples/amud_audit.rs:
