/root/repo/target/debug/examples/amud_audit-b859ee88a22572fd.d: examples/amud_audit.rs Cargo.toml

/root/repo/target/debug/examples/libamud_audit-b859ee88a22572fd.rmeta: examples/amud_audit.rs Cargo.toml

examples/amud_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
