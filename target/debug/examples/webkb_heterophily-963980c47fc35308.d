/root/repo/target/debug/examples/webkb_heterophily-963980c47fc35308.d: examples/webkb_heterophily.rs Cargo.toml

/root/repo/target/debug/examples/libwebkb_heterophily-963980c47fc35308.rmeta: examples/webkb_heterophily.rs Cargo.toml

examples/webkb_heterophily.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
