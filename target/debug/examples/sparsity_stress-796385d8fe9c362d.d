/root/repo/target/debug/examples/sparsity_stress-796385d8fe9c362d.d: examples/sparsity_stress.rs Cargo.toml

/root/repo/target/debug/examples/libsparsity_stress-796385d8fe9c362d.rmeta: examples/sparsity_stress.rs Cargo.toml

examples/sparsity_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
