/root/repo/target/debug/examples/sparsity_stress-376e92f4acceb131.d: examples/sparsity_stress.rs

/root/repo/target/debug/examples/sparsity_stress-376e92f4acceb131: examples/sparsity_stress.rs

examples/sparsity_stress.rs:
