/root/repo/target/debug/examples/citation_pipeline-023b448498250980.d: examples/citation_pipeline.rs

/root/repo/target/debug/examples/citation_pipeline-023b448498250980: examples/citation_pipeline.rs

examples/citation_pipeline.rs:
