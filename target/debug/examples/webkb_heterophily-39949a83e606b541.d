/root/repo/target/debug/examples/webkb_heterophily-39949a83e606b541.d: examples/webkb_heterophily.rs

/root/repo/target/debug/examples/webkb_heterophily-39949a83e606b541: examples/webkb_heterophily.rs

examples/webkb_heterophily.rs:
