/root/repo/target/release/libamud_lint.rlib: /root/repo/crates/lint/src/lib.rs
