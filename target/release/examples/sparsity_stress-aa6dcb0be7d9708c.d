/root/repo/target/release/examples/sparsity_stress-aa6dcb0be7d9708c.d: examples/sparsity_stress.rs

/root/repo/target/release/examples/sparsity_stress-aa6dcb0be7d9708c: examples/sparsity_stress.rs

examples/sparsity_stress.rs:
