/root/repo/target/release/examples/webkb_heterophily-178279208086a31f.d: examples/webkb_heterophily.rs

/root/repo/target/release/examples/webkb_heterophily-178279208086a31f: examples/webkb_heterophily.rs

examples/webkb_heterophily.rs:
