/root/repo/target/release/examples/amud_audit-8190b5b74492447f.d: examples/amud_audit.rs

/root/repo/target/release/examples/amud_audit-8190b5b74492447f: examples/amud_audit.rs

examples/amud_audit.rs:
