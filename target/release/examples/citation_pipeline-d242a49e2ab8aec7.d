/root/repo/target/release/examples/citation_pipeline-d242a49e2ab8aec7.d: examples/citation_pipeline.rs

/root/repo/target/release/examples/citation_pipeline-d242a49e2ab8aec7: examples/citation_pipeline.rs

examples/citation_pipeline.rs:
