/root/repo/target/release/examples/quickstart-1df22281cc44651c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1df22281cc44651c: examples/quickstart.rs

examples/quickstart.rs:
