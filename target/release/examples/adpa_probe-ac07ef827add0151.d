/root/repo/target/release/examples/adpa_probe-ac07ef827add0151.d: examples/adpa_probe.rs

/root/repo/target/release/examples/adpa_probe-ac07ef827add0151: examples/adpa_probe.rs

examples/adpa_probe.rs:
