/root/repo/target/release/deps/amud_lint-84ba18b6036aac23.d: crates/lint/src/main.rs

/root/repo/target/release/deps/amud_lint-84ba18b6036aac23: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
