/root/repo/target/release/deps/amud_graph-49f5e8f278ba5be8.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

/root/repo/target/release/deps/libamud_graph-49f5e8f278ba5be8.rlib: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

/root/repo/target/release/deps/libamud_graph-49f5e8f278ba5be8.rmeta: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/digraph.rs:
crates/graph/src/generate.rs:
crates/graph/src/io.rs:
crates/graph/src/measures.rs:
crates/graph/src/patterns.rs:
