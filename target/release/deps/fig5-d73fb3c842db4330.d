/root/repo/target/release/deps/fig5-d73fb3c842db4330.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-d73fb3c842db4330: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
