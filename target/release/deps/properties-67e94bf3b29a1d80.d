/root/repo/target/release/deps/properties-67e94bf3b29a1d80.d: tests/properties.rs

/root/repo/target/release/deps/properties-67e94bf3b29a1d80: tests/properties.rs

tests/properties.rs:
