/root/repo/target/release/deps/fig2-aa350db3011140cf.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-aa350db3011140cf: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
