/root/repo/target/release/deps/tune-dec028af58739e60.d: crates/bench/src/bin/tune.rs

/root/repo/target/release/deps/tune-dec028af58739e60: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:
