/root/repo/target/release/deps/table2-57c70365dcb9b2bf.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-57c70365dcb9b2bf: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
