/root/repo/target/release/deps/amud_graph-1c1da135f62cfaf6.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

/root/repo/target/release/deps/amud_graph-1c1da135f62cfaf6: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/digraph.rs crates/graph/src/generate.rs crates/graph/src/io.rs crates/graph/src/measures.rs crates/graph/src/patterns.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/digraph.rs:
crates/graph/src/generate.rs:
crates/graph/src/io.rs:
crates/graph/src/measures.rs:
crates/graph/src/patterns.rs:
