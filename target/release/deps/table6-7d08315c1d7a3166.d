/root/repo/target/release/deps/table6-7d08315c1d7a3166.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-7d08315c1d7a3166: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
