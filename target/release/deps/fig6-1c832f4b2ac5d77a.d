/root/repo/target/release/deps/fig6-1c832f4b2ac5d77a.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-1c832f4b2ac5d77a: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
