/root/repo/target/release/deps/rand_distr-a690a01a6ff16b62.d: crates/compat/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-a690a01a6ff16b62.rlib: crates/compat/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-a690a01a6ff16b62.rmeta: crates/compat/rand_distr/src/lib.rs

crates/compat/rand_distr/src/lib.rs:
