/root/repo/target/release/deps/paper_shape-509970150c1bb82d.d: tests/paper_shape.rs

/root/repo/target/release/deps/paper_shape-509970150c1bb82d: tests/paper_shape.rs

tests/paper_shape.rs:
