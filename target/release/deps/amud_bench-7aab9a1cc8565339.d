/root/repo/target/release/deps/amud_bench-7aab9a1cc8565339.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libamud_bench-7aab9a1cc8565339.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libamud_bench-7aab9a1cc8565339.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
