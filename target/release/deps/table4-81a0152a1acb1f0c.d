/root/repo/target/release/deps/table4-81a0152a1acb1f0c.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-81a0152a1acb1f0c: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
