/root/repo/target/release/deps/amud_bench-d5e27d16638abaab.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/amud_bench-d5e27d16638abaab: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
