/root/repo/target/release/deps/amud_core-45a20b8dc9379345.d: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

/root/repo/target/release/deps/amud_core-45a20b8dc9379345: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

crates/core/src/lib.rs:
crates/core/src/adpa.rs:
crates/core/src/amud.rs:
crates/core/src/paradigm.rs:
crates/core/src/propagation.rs:
