/root/repo/target/release/deps/amud_core-d4cce618209e13b5.d: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

/root/repo/target/release/deps/libamud_core-d4cce618209e13b5.rlib: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

/root/repo/target/release/deps/libamud_core-d4cce618209e13b5.rmeta: crates/core/src/lib.rs crates/core/src/adpa.rs crates/core/src/amud.rs crates/core/src/paradigm.rs crates/core/src/propagation.rs

crates/core/src/lib.rs:
crates/core/src/adpa.rs:
crates/core/src/amud.rs:
crates/core/src/paradigm.rs:
crates/core/src/propagation.rs:
