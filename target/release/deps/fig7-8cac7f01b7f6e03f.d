/root/repo/target/release/deps/fig7-8cac7f01b7f6e03f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-8cac7f01b7f6e03f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
