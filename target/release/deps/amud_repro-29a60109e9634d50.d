/root/repo/target/release/deps/amud_repro-29a60109e9634d50.d: src/lib.rs

/root/repo/target/release/deps/libamud_repro-29a60109e9634d50.rlib: src/lib.rs

/root/repo/target/release/deps/libamud_repro-29a60109e9634d50.rmeta: src/lib.rs

src/lib.rs:
