/root/repo/target/release/deps/amud_datasets-838f9071034941f4.d: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

/root/repo/target/release/deps/libamud_datasets-838f9071034941f4.rlib: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

/root/repo/target/release/deps/libamud_datasets-838f9071034941f4.rmeta: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/error.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dsbm.rs:
crates/datasets/src/error.rs:
crates/datasets/src/features.rs:
crates/datasets/src/io.rs:
crates/datasets/src/registry.rs:
crates/datasets/src/sparsify.rs:
crates/datasets/src/splits.rs:
