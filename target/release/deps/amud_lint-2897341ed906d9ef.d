/root/repo/target/release/deps/amud_lint-2897341ed906d9ef.d: crates/lint/src/lib.rs

/root/repo/target/release/deps/amud_lint-2897341ed906d9ef: crates/lint/src/lib.rs

crates/lint/src/lib.rs:
