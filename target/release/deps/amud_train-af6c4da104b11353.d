/root/repo/target/release/deps/amud_train-af6c4da104b11353.d: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

/root/repo/target/release/deps/libamud_train-af6c4da104b11353.rlib: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

/root/repo/target/release/deps/libamud_train-af6c4da104b11353.rmeta: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/error.rs crates/train/src/faults.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/data.rs:
crates/train/src/error.rs:
crates/train/src/faults.rs:
crates/train/src/grid.rs:
crates/train/src/metrics.rs:
crates/train/src/model.rs:
crates/train/src/trainer.rs:
