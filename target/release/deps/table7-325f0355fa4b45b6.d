/root/repo/target/release/deps/table7-325f0355fa4b45b6.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-325f0355fa4b45b6: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
