/root/repo/target/release/deps/fig5-58e8105cf5a10502.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-58e8105cf5a10502: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
