/root/repo/target/release/deps/amud_lint-193ac478d0a78c92.d: crates/lint/src/main.rs

/root/repo/target/release/deps/amud_lint-193ac478d0a78c92: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
