/root/repo/target/release/deps/rand-d863599764092b2e.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-d863599764092b2e.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-d863599764092b2e.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
