/root/repo/target/release/deps/amud_repro-0f36e89534558e36.d: src/lib.rs

/root/repo/target/release/deps/amud_repro-0f36e89534558e36: src/lib.rs

src/lib.rs:
