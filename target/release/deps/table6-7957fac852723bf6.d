/root/repo/target/release/deps/table6-7957fac852723bf6.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-7957fac852723bf6: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
