/root/repo/target/release/deps/fig6-282ce638d0212068.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-282ce638d0212068: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
