/root/repo/target/release/deps/proptest-d6b1e0747fb60c2b.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d6b1e0747fb60c2b.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d6b1e0747fb60c2b.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
