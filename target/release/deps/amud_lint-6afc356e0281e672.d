/root/repo/target/release/deps/amud_lint-6afc356e0281e672.d: crates/lint/src/lib.rs

/root/repo/target/release/deps/libamud_lint-6afc356e0281e672.rlib: crates/lint/src/lib.rs

/root/repo/target/release/deps/libamud_lint-6afc356e0281e672.rmeta: crates/lint/src/lib.rs

crates/lint/src/lib.rs:
