/root/repo/target/release/deps/reproducibility-974dfac8904491c3.d: tests/reproducibility.rs

/root/repo/target/release/deps/reproducibility-974dfac8904491c3: tests/reproducibility.rs

tests/reproducibility.rs:
