/root/repo/target/release/deps/gradient_properties-1890d517afa6216c.d: crates/nn/tests/gradient_properties.rs

/root/repo/target/release/deps/gradient_properties-1890d517afa6216c: crates/nn/tests/gradient_properties.rs

crates/nn/tests/gradient_properties.rs:
