/root/repo/target/release/deps/amud_train-5593abdfeac80c92.d: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

/root/repo/target/release/deps/amud_train-5593abdfeac80c92: crates/train/src/lib.rs crates/train/src/data.rs crates/train/src/grid.rs crates/train/src/metrics.rs crates/train/src/model.rs crates/train/src/trainer.rs

crates/train/src/lib.rs:
crates/train/src/data.rs:
crates/train/src/grid.rs:
crates/train/src/metrics.rs:
crates/train/src/model.rs:
crates/train/src/trainer.rs:
