/root/repo/target/release/deps/table5-4d52b1d491566741.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-4d52b1d491566741: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
