/root/repo/target/release/deps/verify_models-deb891b0bdaec0c6.d: tests/verify_models.rs

/root/repo/target/release/deps/verify_models-deb891b0bdaec0c6: tests/verify_models.rs

tests/verify_models.rs:
