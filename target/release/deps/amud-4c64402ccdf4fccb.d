/root/repo/target/release/deps/amud-4c64402ccdf4fccb.d: src/bin/amud.rs

/root/repo/target/release/deps/amud-4c64402ccdf4fccb: src/bin/amud.rs

src/bin/amud.rs:
