/root/repo/target/release/deps/table5-c9bd8bb0b33da949.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-c9bd8bb0b33da949: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
