/root/repo/target/release/deps/table2-08845b1167ef7eb5.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-08845b1167ef7eb5: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
