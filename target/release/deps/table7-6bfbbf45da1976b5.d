/root/repo/target/release/deps/table7-6bfbbf45da1976b5.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-6bfbbf45da1976b5: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
