/root/repo/target/release/deps/fig7-8359702fffb78066.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-8359702fffb78066: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
