/root/repo/target/release/deps/table1-fe95477973fd5300.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-fe95477973fd5300: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
