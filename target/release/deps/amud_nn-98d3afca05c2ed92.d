/root/repo/target/release/deps/amud_nn-98d3afca05c2ed92.d: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs

/root/repo/target/release/deps/libamud_nn-98d3afca05c2ed92.rlib: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs

/root/repo/target/release/deps/libamud_nn-98d3afca05c2ed92.rmeta: crates/nn/src/lib.rs crates/nn/src/complex.rs crates/nn/src/linear.rs crates/nn/src/matrix.rs crates/nn/src/optim.rs crates/nn/src/tape.rs crates/nn/src/verify.rs

crates/nn/src/lib.rs:
crates/nn/src/complex.rs:
crates/nn/src/linear.rs:
crates/nn/src/matrix.rs:
crates/nn/src/optim.rs:
crates/nn/src/tape.rs:
crates/nn/src/verify.rs:
