/root/repo/target/release/deps/tune-e6decef187b8ba3a.d: crates/bench/src/bin/tune.rs

/root/repo/target/release/deps/tune-e6decef187b8ba3a: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:
