/root/repo/target/release/deps/fig2-aa96db687d2c8826.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-aa96db687d2c8826: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
