/root/repo/target/release/deps/criterion-f0444e805bb0bac7.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f0444e805bb0bac7.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f0444e805bb0bac7.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
