/root/repo/target/release/deps/table4-2d52cb3730318af4.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-2d52cb3730318af4: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
