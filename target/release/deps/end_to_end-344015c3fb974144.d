/root/repo/target/release/deps/end_to_end-344015c3fb974144.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-344015c3fb974144: tests/end_to_end.rs

tests/end_to_end.rs:
