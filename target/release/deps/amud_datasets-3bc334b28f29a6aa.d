/root/repo/target/release/deps/amud_datasets-3bc334b28f29a6aa.d: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

/root/repo/target/release/deps/amud_datasets-3bc334b28f29a6aa: crates/datasets/src/lib.rs crates/datasets/src/dsbm.rs crates/datasets/src/features.rs crates/datasets/src/io.rs crates/datasets/src/registry.rs crates/datasets/src/sparsify.rs crates/datasets/src/splits.rs

crates/datasets/src/lib.rs:
crates/datasets/src/dsbm.rs:
crates/datasets/src/features.rs:
crates/datasets/src/io.rs:
crates/datasets/src/registry.rs:
crates/datasets/src/sparsify.rs:
crates/datasets/src/splits.rs:
