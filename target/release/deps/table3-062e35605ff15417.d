/root/repo/target/release/deps/table3-062e35605ff15417.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-062e35605ff15417: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
