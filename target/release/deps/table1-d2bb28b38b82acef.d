/root/repo/target/release/deps/table1-d2bb28b38b82acef.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-d2bb28b38b82acef: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
