/root/repo/target/release/deps/amud-69de60182e1188f6.d: src/bin/amud.rs

/root/repo/target/release/deps/amud-69de60182e1188f6: src/bin/amud.rs

src/bin/amud.rs:
