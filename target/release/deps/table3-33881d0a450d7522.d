/root/repo/target/release/deps/table3-33881d0a450d7522.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-33881d0a450d7522: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
