/root/repo/target/release/amud-lint: /root/repo/crates/lint/src/lib.rs /root/repo/crates/lint/src/main.rs
