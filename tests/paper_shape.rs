//! Shape tests: the paper's headline empirical claims must hold on the
//! replicas (not the exact numbers — the orderings and signs).

use amud_repro::core::{Adpa, AdpaConfig};
use amud_repro::datasets::{replica, ReplicaScale};
use amud_repro::models::registry::build_model;
use amud_repro::models::{dirgnn::DirGnn, gcn::Gcn};
use amud_repro::nn::{NodeId, ParamBank, Tape};
use amud_repro::train::{train, GraphData, Model, TrainConfig};
use rand::rngs::StdRng;

struct Shim(Box<dyn Model>);

impl Model for Shim {
    fn bank(&self) -> &ParamBank {
        self.0.bank()
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        self.0.bank_mut()
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        self.0.forward(tape, data, training, rng)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

fn bundle(name: &str, seed: u64) -> GraphData {
    let d = replica(name, ReplicaScale::tiny(), seed);
    GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    )
    .unwrap()
}

fn cfg() -> TrainConfig {
    TrainConfig { epochs: 80, patience: 0, lr: 0.01, weight_decay: 5e-4, ..Default::default() }
}

/// Average accuracy over a couple of seeds to damp tiny-replica variance.
fn avg_acc(run: impl FnMut(u64) -> f64) -> f64 {
    (0..2).map(run).sum::<f64>() / 2.0
}

#[test]
fn o1_directed_models_win_on_oriented_heterophily() {
    // Fig. 2(b): on Chameleon-like data, a directed GNN on the natural
    // digraph beats an undirected GNN on the coarse transformation.
    let data = bundle("chameleon", 10);
    let undirected = data.to_undirected();
    let gcn = avg_acc(|s| {
        let mut m = Gcn::new(&undirected, 32, 0.3, s);
        train(&mut m, &undirected, cfg(), s).unwrap().test_acc
    });
    let dirgnn = avg_acc(|s| {
        let mut m = DirGnn::new(&data, 32, 0.3, s);
        train(&mut m, &data, cfg(), s).unwrap().test_acc
    });
    assert!(
        dirgnn > gcn,
        "directed model must win on oriented heterophily: DirGNN {dirgnn:.3} vs U-GCN {gcn:.3}"
    );
}

#[test]
fn o2_undirected_augmentation_hurts_on_oriented_heterophily() {
    // Fig. 2(d): feeding a directed GNN the U- augmented squirrel loses to
    // the natural digraph.
    let data = bundle("squirrel", 11);
    let undirected = data.to_undirected();
    let on_directed = avg_acc(|s| {
        let mut m = DirGnn::new(&data, 32, 0.3, s);
        train(&mut m, &data, cfg(), s).unwrap().test_acc
    });
    let on_undirected = avg_acc(|s| {
        let mut m = DirGnn::new(&undirected, 32, 0.3, s);
        train(&mut m, &undirected, cfg(), s).unwrap().test_acc
    });
    assert!(
        on_directed > on_undirected,
        "U- augmentation must hurt: D {on_directed:.3} vs U {on_undirected:.3}"
    );
}

#[test]
fn adpa_is_competitive_in_both_regimes() {
    // Sec. V-B: ADPA is "a feasible choice" for AMUndirected and the
    // paradigm instance for AMDirected. At tiny fixture scale (300 nodes)
    // ADPA's node-adaptive parameters are data-starved, so the bar is
    // regime-aware: never the worst model on the homophilous side, and at
    // least median on the directed side where its mechanism applies.
    // Early stopping (best-val selection) damps tiny-replica variance.
    let stable = TrainConfig {
        epochs: 120,
        patience: 25,
        lr: 0.01,
        weight_decay: 5e-4,
        ..Default::default()
    };
    for (dataset, seeds, need_median) in [("cora_ml", 20u64, false), ("chameleon", 21u64, true)] {
        let raw = bundle(dataset, seeds);
        let (prepared, _, _) = amud_repro::core::paradigm::prepare_topology(&raw);
        let adpa = avg_acc(|s| {
            let mut m = Adpa::new(&prepared, AdpaConfig::default(), s).unwrap();
            train(&mut m, &prepared, stable, s).unwrap().test_acc
        });
        let mut baseline_accs = Vec::new();
        for name in ["GCN", "SGC", "DiGCN", "DirGNN"] {
            let input = if amud_repro::models::registry::is_directed_model(name) {
                raw.clone()
            } else {
                raw.to_undirected()
            };
            let acc = avg_acc(|s| {
                let mut m = Shim(build_model(name, &input, s));
                train(&mut m, &input, stable, s).unwrap().test_acc
            });
            baseline_accs.push(acc);
        }
        baseline_accs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Homophilous tiny fixtures starve ADPA's node-adaptive weights
        // (n×(k+1) free parameters on 300 nodes), so Paradigm I only
        // requires staying within a few points of the weakest baseline —
        // the paper itself routes AMUndirected data to undirected GNNs.
        let (bar, slack) = if need_median {
            (baseline_accs[baseline_accs.len() / 2], 0.02)
        } else {
            (baseline_accs[0], 0.06)
        };
        assert!(
            adpa > bar - slack,
            "{dataset}: ADPA {adpa:.3} must clear the {} baseline ({bar:.3})",
            if need_median { "median" } else { "weakest" }
        );
    }
}

#[test]
fn dp_attention_outperforms_no_attention() {
    // Table VII's headline: removing DP attention costs accuracy on a
    // directed-regime dataset.
    let data = bundle("chameleon", 30);
    let full = avg_acc(|s| {
        let mut m = Adpa::new(&data, AdpaConfig::default(), s).unwrap();
        train(&mut m, &data, cfg(), s).unwrap().test_acc
    });
    let without = avg_acc(|s| {
        let c =
            AdpaConfig { dp_attention: amud_repro::core::DpAttention::None, ..Default::default() };
        let mut m = Adpa::new(&data, c, s).unwrap();
        train(&mut m, &data, cfg(), s).unwrap().test_acc
    });
    assert!(
        full > without - 0.02,
        "DP attention must not hurt: full {full:.3} vs none {without:.3}"
    );
}

#[test]
fn two_order_patterns_beat_one_order_on_directed_regime() {
    // Table VI's headline: 2-order DP operators dominate 1-order where the
    // class signal lives in 2-hop co-occurrence (chameleon-like wiring).
    // Tiny replicas are noisy, so we only require "not clearly worse".
    let data = bundle("chameleon", 31);
    let order1 = avg_acc(|s| {
        let c = AdpaConfig { max_order: 1, ..Default::default() };
        let mut m = Adpa::new(&data, c, s).unwrap();
        train(&mut m, &data, cfg(), s).unwrap().test_acc
    });
    let order2 = avg_acc(|s| {
        let c = AdpaConfig { max_order: 2, ..Default::default() };
        let mut m = Adpa::new(&data, c, s).unwrap();
        train(&mut m, &data, cfg(), s).unwrap().test_acc
    });
    assert!(
        order2 > order1 - 0.05,
        "2-order must not lose clearly to 1-order: {order2:.3} vs {order1:.3}"
    );
}
