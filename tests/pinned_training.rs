//! Model-level pin of a recorded seed run: trains ADPA on a fixed replica
//! with a fixed seed and compares the resulting test accuracy and a sample
//! of eval-mode logits *bitwise* against constants recorded when the lane
//! microkernels landed (DESIGN.md §14).
//!
//! This is the guard the kernel work is not allowed to break silently: any
//! change to a kernel's floating-point op order — a reassociated fold, a
//! different blocking, a new reduction tree — shows up here as a bit
//! mismatch, at the level users observe (training results), not just in
//! kernel unit tests. By the amud-par determinism contract the pins hold
//! at every `AMUD_THREADS`, and ci.sh runs them at 1 and 4.
//!
//! After an *intentional* numerics change, re-record with:
//!
//! ```text
//! AMUD_PIN_BLESS=1 cargo test --test pinned_training -- --nocapture
//! ```
//!
//! and paste the printed constants below (then say so in the PR: a pin
//! refresh is a semver-visible numerics change).

use amud_repro::core::{paradigm, Adpa, AdpaConfig};
use amud_repro::datasets::{replica, ReplicaScale};
use amud_repro::train::{train, GraphData, Model, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `result.test_acc.to_bits()` of the recorded run (`f64`).
const PINNED_TEST_ACC_BITS: u64 = 0x3fe97dd49c34115b;
/// `to_bits()` of twelve eval-mode logits of the recorded run: the first
/// four entries, four from the middle of the matrix, and the last four.
const PINNED_LOGIT_BITS: [u32; 12] = [
    0x405c35f5, 0x3fbf5b76, 0xbf155ad2, 0xbfadccc6, 0xbf7ed05f, 0xbcf3e5f0, 0xbe5b29f8, 0x3fb2b830,
    0x3f24dd0a, 0xbf5f0597, 0xbf878b5a, 0x3fa8d438,
];

fn sample_indices(len: usize) -> [usize; 12] {
    let mid = len / 2;
    [0, 1, 2, 3, mid, mid + 1, mid + 2, mid + 3, len - 4, len - 3, len - 2, len - 1]
}

#[test]
fn training_results_match_the_recorded_seed_run() {
    let d = replica("cora_ml", ReplicaScale::tiny(), 0);
    let data = GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    )
    .expect("replica bundle is well-formed");
    let (prepared, _, _) = paradigm::prepare_topology(&data);
    let mut model = Adpa::new(&prepared, AdpaConfig::default(), 0).expect("default config");
    let cfg =
        TrainConfig { epochs: 25, patience: 0, lr: 0.01, weight_decay: 5e-4, ..Default::default() };
    let result = train(&mut model, &prepared, cfg, 0).expect("training converges");

    // Deterministic eval-mode forward (dropout off; the rng is unused but
    // the Model API threads one through).
    let mut rng = StdRng::seed_from_u64(0);
    let mut tape = amud_repro::nn::Tape::new();
    let out = Model::forward(&model, &mut tape, &prepared, false, &mut rng);
    let logits = tape.value(out);
    let flat = logits.as_slice();
    assert!(flat.len() >= 16, "logit matrix unexpectedly small: {}", flat.len());
    let sampled: Vec<u32> = sample_indices(flat.len()).iter().map(|&i| flat[i].to_bits()).collect();

    if std::env::var("AMUD_PIN_BLESS").is_ok() {
        println!("const PINNED_TEST_ACC_BITS: u64 = {:#018x};", result.test_acc.to_bits());
        println!("const PINNED_LOGIT_BITS: [u32; 12] = [");
        for b in &sampled {
            println!("    {b:#010x},");
        }
        println!("];");
        return;
    }

    assert_eq!(
        result.test_acc.to_bits(),
        PINNED_TEST_ACC_BITS,
        "test_acc drifted from the recorded run: {} (bits {:#010x})",
        result.test_acc,
        result.test_acc.to_bits()
    );
    assert_eq!(sampled, PINNED_LOGIT_BITS.to_vec(), "eval logits drifted from the recorded run");
}
