//! Fault-injection suite (DESIGN.md §8.3): every injected failure must be
//! either *recovered* (snapshot rollback + LR backoff, run still learns)
//! or surfaced as a *typed error* — never a panic, never a silent garbage
//! result. The CLI subprocess tests additionally pin the exit-code table.

use amud_repro::core::{Adpa, AdpaConfig};
use amud_repro::datasets::io::{dataset_from_text, dataset_to_text};
use amud_repro::datasets::{replica, DatasetError, ReplicaScale};
use amud_repro::train::{
    corrupt_bytes, repeat_runs_with_faults, train, train_with_faults, truncate_fraction, Fault,
    FaultPlan, GraphData, TrainConfig, TrainError,
};

fn bundle(name: &str, seed: u64) -> GraphData {
    let d = replica(name, ReplicaScale::tiny(), seed);
    GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    )
    .unwrap()
}

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig { epochs, patience: 0, lr: 0.01, weight_decay: 5e-4, ..Default::default() }
}

// --- trainer-side faults -------------------------------------------------

#[test]
fn nan_loss_glitch_is_recovered_and_run_still_learns() {
    let data = bundle("texas", 0);
    let mut model = Adpa::new(&data, AdpaConfig::default(), 0).unwrap();
    let plan = FaultPlan::new().with(Fault::NanLoss { epoch: 20 });
    let result = train_with_faults(&mut model, &data, cfg(60), 0, &plan).unwrap();
    assert_eq!(result.recovery.retries(), 1, "exactly one rollback expected");
    assert_eq!(result.recovery.events[0].epoch, 20);
    assert!(result.recovery.events[0].new_lr < 0.01, "LR must back off");
    assert!(result.test_acc > 0.2, "recovered run must still learn: {}", result.test_acc);
}

#[test]
fn gradient_spike_is_recovered() {
    let data = bundle("texas", 1);
    let mut model = Adpa::new(&data, AdpaConfig::default(), 1).unwrap();
    let plan = FaultPlan::new().with(Fault::GradientSpike { epoch: 15, factor: 1e9 });
    let result = train_with_faults(&mut model, &data, cfg(60), 1, &plan).unwrap();
    assert_eq!(result.recovery.retries(), 1);
    assert!(result.test_acc > 0.2, "recovered run must still learn: {}", result.test_acc);
}

#[test]
fn persistent_divergence_exhausts_retries_into_a_typed_error() {
    let data = bundle("texas", 2);
    let mut model = Adpa::new(&data, AdpaConfig::default(), 2).unwrap();
    let plan = FaultPlan::new().with(Fault::PersistentNanLoss { from_epoch: 5 });
    match train_with_faults(&mut model, &data, cfg(60), 2, &plan) {
        Err(TrainError::NonFiniteLoss { epoch, retries }) => {
            assert!(epoch >= 5, "failure must happen after injection starts, got {epoch}");
            assert_eq!(retries, TrainConfig::default().max_retries);
        }
        other => panic!("expected NonFiniteLoss, got {other:?}"),
    }
}

#[test]
fn zero_retry_budget_fails_on_first_violation() {
    let data = bundle("texas", 3);
    let mut model = Adpa::new(&data, AdpaConfig::default(), 3).unwrap();
    let plan = FaultPlan::new().with(Fault::NanLoss { epoch: 4 });
    let c = TrainConfig { max_retries: 0, ..cfg(30) };
    match train_with_faults(&mut model, &data, c, 3, &plan) {
        Err(TrainError::NonFiniteLoss { epoch: 4, retries: 0 }) => {}
        other => panic!("expected NonFiniteLoss at epoch 4, got {other:?}"),
    }
}

#[test]
fn faulted_and_clean_runs_agree_before_the_injection_epoch() {
    // Determinism contract: the fault harness must not perturb the run
    // before the scheduled epoch.
    let data = bundle("texas", 4);
    let clean =
        train(&mut Adpa::new(&data, AdpaConfig::default(), 4).unwrap(), &data, cfg(30), 4).unwrap();
    let plan = FaultPlan::new().with(Fault::NanLoss { epoch: 29 });
    let faulted = train_with_faults(
        &mut Adpa::new(&data, AdpaConfig::default(), 4).unwrap(),
        &data,
        cfg(30),
        4,
        &plan,
    )
    .unwrap();
    // Injection at the final epoch: everything up to it matched, so the
    // best-val accuracies track each other.
    assert_eq!(clean.best_val_acc, faulted.best_val_acc);
}

#[test]
fn ten_seed_sweep_with_one_diverged_seed_reports_nine_runs_and_a_manifest() {
    // The ISSUE.md acceptance scenario: a 10-seed repeat in which one seed
    // diverges must yield a 9-run summary plus a failure manifest — not an
    // aborted sweep, not a poisoned mean.
    let data = bundle("texas", 5);
    let bad_seed = 103u64;
    let out = repeat_runs_with_faults(
        |s| Adpa::new(&data, AdpaConfig::default(), s),
        &data,
        cfg(40),
        10,
        100,
        |seed| {
            if seed == bad_seed {
                FaultPlan::new().with(Fault::PersistentNanLoss { from_epoch: 3 })
            } else {
                FaultPlan::new()
            }
        },
    );
    assert_eq!(out.results.len(), 9, "nine seeds must survive");
    assert_eq!(out.failures.len(), 1, "one seed must land in the manifest");
    assert_eq!(out.failures[0].seed, bad_seed);
    assert!(matches!(out.failures[0].error, TrainError::NonFiniteLoss { .. }));
    assert_eq!(out.summary.n_failed, 1);
    assert_eq!(out.summary.n_attempted(), 10);
    assert!(out.summary.mean.is_finite(), "NaN seed must not poison the mean");
    assert!(out.summary.to_string().contains("(9/10)"), "summary: {}", out.summary);
}

// --- parser-side faults --------------------------------------------------

#[test]
fn corrupted_dataset_bytes_yield_typed_errors_never_panics() {
    let d = replica("texas", ReplicaScale::tiny(), 6);
    let text = dataset_to_text(&d);
    let mut rejected = 0usize;
    for seed in 0..200u64 {
        match dataset_from_text(&corrupt_bytes(&text, seed, 8)) {
            Ok(_) => {}
            Err(DatasetError::Parse { line, .. }) => {
                assert!(line >= 1, "parse errors must carry a 1-based line");
                rejected += 1;
            }
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }
    assert!(rejected > 100, "8 mutations should usually break the file ({rejected}/200)");
}

#[test]
fn truncated_dataset_yields_typed_error() {
    let d = replica("cornell", ReplicaScale::tiny(), 7);
    let text = dataset_to_text(&d);
    for fraction in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let cut = truncate_fraction(&text, fraction);
        match dataset_from_text(&cut) {
            Err(DatasetError::Parse { .. }) | Err(DatasetError::Graph(_)) => {}
            Ok(_) => panic!("truncation to {fraction} silently parsed"),
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }
}

// --- CLI exit codes (subprocess regression tests) ------------------------

fn amud_cli(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_amud"))
        .args(args)
        .env("AMUD_SCALE", "tiny")
        .env("AMUD_EPOCHS", "5")
        .output()
        .expect("spawning the amud binary")
}

#[test]
fn cli_rejects_corrupt_amud_file_with_parse_exit_code() {
    let d = replica("texas", ReplicaScale::tiny(), 8);
    let text = dataset_to_text(&d);
    let dir = std::env::temp_dir();
    let path = dir.join("amud_fault_injection_corrupt.amud");
    std::fs::write(&path, truncate_fraction(&text, 0.4)).unwrap();
    let out = amud_cli(&["score", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr must explain: {stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn cli_rejects_unknown_dataset_with_bad_input_exit_code() {
    let out = amud_cli(&["score", "definitely_not_a_dataset"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn cli_rejects_missing_file_with_io_exit_code() {
    let out = amud_cli(&["score", "/nonexistent/path/to/file.amud"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn cli_rejects_bad_usage_with_usage_exit_code() {
    assert_eq!(amud_cli(&[]).status.code(), Some(2));
    assert_eq!(amud_cli(&["train", "texas", "--max-retries"]).status.code(), Some(2));
    assert_eq!(amud_cli(&["train", "texas", "--max-retries", "lots"]).status.code(), Some(2));
    assert_eq!(amud_cli(&["score", "texas", "--frobnicate"]).status.code(), Some(2));
}

#[test]
fn cli_train_accepts_max_retries_flag() {
    let out = amud_cli(&["train", "texas", "MLP", "--max-retries", "3"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}\nstdout: {}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
}
