//! Property-based tests over the substrates' invariants (DESIGN.md §6)
//! and the failure model (§8): dataset serialization round-trips exactly,
//! and no corruption of the serialized bytes can panic the parser.

use amud_repro::core::amud::{amud_score, guidance_score};
use amud_repro::graph::measures::{adjusted_homophily, edge_homophily, label_informativeness};
use amud_repro::graph::patterns::DirectedPattern;
use amud_repro::graph::{CsrMatrix, DiGraph};
use amud_repro::nn::DenseMatrix;
use proptest::prelude::*;

/// Strategy: a random edge list over `n` nodes.
fn edges(n: usize, max_m: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..max_m)
}

/// Strategy: random labels over `n` nodes with `c` classes.
fn labels(n: usize, c: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..c, n)
}

proptest! {
    #[test]
    fn csr_from_coo_roundtrips(list in edges(20, 80)) {
        let m = CsrMatrix::from_edges(20, 20, list.clone()).unwrap();
        // Duplicate entries sum (documented from_coo semantics); the stored
        // value equals each pair's multiplicity, and nothing else exists.
        let mut counts: std::collections::HashMap<(usize, usize), f32> =
            std::collections::HashMap::new();
        for &(r, c) in &list {
            *counts.entry((r, c)).or_insert(0.0) += 1.0;
        }
        for (&(r, c), &want) in &counts {
            prop_assert_eq!(m.get(r, c), want);
        }
        prop_assert_eq!(m.nnz(), counts.len());
        // Rows are sorted strictly ascending.
        for r in 0..20 {
            let cols = m.row_cols(r);
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn transpose_is_involution(list in edges(15, 60)) {
        let m = CsrMatrix::from_edges(15, 15, list).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn spmm_matches_dense_matmul(list in edges(10, 40), cols in 1usize..4) {
        let m = CsrMatrix::from_edges(10, 10, list).unwrap();
        let x = DenseMatrix::from_fn(10, cols, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
        let mut sparse_out = DenseMatrix::zeros(10, cols);
        m.spmm(x.as_slice(), cols, sparse_out.as_mut_slice());
        // Dense reference.
        let dense = m.to_dense();
        for r in 0..10 {
            for c in 0..cols {
                let want: f32 = (0..10).map(|k| dense[r * 10 + k] * x.get(k, c)).sum();
                prop_assert!((sparse_out.get(r, c) - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn bool_matmul_matches_dense_reachability(a_list in edges(8, 24), b_list in edges(8, 24)) {
        let a = CsrMatrix::from_edges(8, 8, a_list).unwrap();
        let b = CsrMatrix::from_edges(8, 8, b_list).unwrap();
        let prod = a.bool_matmul(&b).unwrap();
        let (da, db) = (a.to_dense(), b.to_dense());
        for r in 0..8 {
            for c in 0..8 {
                let reachable = (0..8).any(|k| da[r * 8 + k] != 0.0 && db[k * 8 + c] != 0.0);
                prop_assert_eq!(prod.get(r, c) != 0.0, reachable, "entry ({}, {})", r, c);
            }
        }
    }

    #[test]
    fn row_normalized_rows_sum_to_one_or_zero(list in edges(12, 50)) {
        let m = CsrMatrix::from_edges(12, 12, list).unwrap().row_normalized();
        for r in 0..12 {
            let s: f32 = m.row_values(r).iter().sum();
            prop_assert!(s.abs() < 1e-5 || (s - 1.0).abs() < 1e-5, "row {} sums to {}", r, s);
        }
    }

    #[test]
    fn undirected_transformation_is_idempotent(list in edges(15, 60)) {
        let g = DiGraph::from_edges(15, list).unwrap();
        let u1 = g.to_undirected();
        let u2 = u1.to_undirected();
        prop_assert_eq!(u1.n_edges(), u2.n_edges());
        prop_assert!(u1.is_symmetric());
    }

    #[test]
    fn edge_homophily_is_a_probability(list in edges(15, 60), ys in labels(15, 4)) {
        let g = DiGraph::from_edges(15, list).unwrap().with_labels(ys, 4).unwrap();
        let h = edge_homophily(g.adjacency(), g.labels().unwrap());
        prop_assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn adjusted_homophily_bounded_above_by_one(list in edges(15, 60), ys in labels(15, 3)) {
        let g = DiGraph::from_edges(15, list).unwrap().with_labels(ys, 3).unwrap();
        let h = adjusted_homophily(g.adjacency(), g.labels().unwrap(), 3);
        prop_assert!(h <= 1.0 + 1e-9, "H_adj = {}", h);
    }

    #[test]
    fn label_informativeness_in_unit_interval(list in edges(15, 60), ys in labels(15, 3)) {
        let g = DiGraph::from_edges(15, list).unwrap().with_labels(ys, 3).unwrap();
        let li = label_informativeness(g.adjacency(), g.labels().unwrap(), 3);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&li), "LI = {}", li);
    }

    #[test]
    fn patterns_collapse_on_symmetric_graphs(list in edges(10, 40)) {
        let g = DiGraph::from_edges(10, list).unwrap().to_undirected();
        let mats: Vec<Vec<f32>> = DirectedPattern::two_order()
            .iter()
            .map(|p| p.materialize(g.adjacency()).unwrap().to_dense())
            .collect();
        for m in &mats[1..] {
            prop_assert_eq!(m, &mats[0]);
        }
    }

    #[test]
    fn amud_score_zero_on_symmetric_graphs(list in edges(20, 80), ys in labels(20, 3)) {
        let g = DiGraph::from_edges(20, list).unwrap().with_labels(ys, 3).unwrap();
        let u = g.to_undirected();
        let report = amud_score(u.adjacency(), u.labels().unwrap(), 3);
        prop_assert!(report.score < 1e-9, "symmetric graph scored {}", report.score);
    }

    #[test]
    fn guidance_score_is_scale_free(r2 in prop::collection::vec(0.0f64..1.0, 4), scale in 0.01f64..100.0) {
        let scaled: Vec<f64> = r2.iter().map(|&x| x * scale).collect();
        let s1 = guidance_score(&r2);
        let s2 = guidance_score(&scaled);
        prop_assert!((s1 - s2).abs() < 1e-9, "{} vs {}", s1, s2);
    }

    #[test]
    fn guidance_score_nonnegative_and_zero_on_equal(x in 0.001f64..1.0) {
        prop_assert_eq!(guidance_score(&[x, x, x, x]), 0.0);
    }

    #[test]
    fn dense_matmul_associates_with_identity(rows in 1usize..6, cols in 1usize..6) {
        let x = DenseMatrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32 * 0.5 - 1.0);
        let eye = DenseMatrix::from_fn(cols, cols, |r, c| if r == c { 1.0 } else { 0.0 });
        prop_assert_eq!(x.matmul(&eye), x);
    }

    #[test]
    fn concat_then_slice_recovers_parts(rows in 1usize..6, c1 in 1usize..5, c2 in 1usize..5) {
        let a = DenseMatrix::from_fn(rows, c1, |r, c| (r + c) as f32);
        let b = DenseMatrix::from_fn(rows, c2, |r, c| (r * c) as f32 - 1.0);
        let cat = DenseMatrix::concat_cols(&[&a, &b]);
        prop_assert_eq!(cat.slice_cols(0, c1), a);
        prop_assert_eq!(cat.slice_cols(c1, c1 + c2), b);
    }

    #[test]
    fn dataset_io_roundtrips_exactly(name_idx in 0usize..4, seed in 0u64..50) {
        use amud_repro::datasets::io::{dataset_from_text, dataset_to_text};
        use amud_repro::datasets::{replica, ReplicaScale};
        let name = ["texas", "cornell", "wisconsin", "chameleon"][name_idx];
        let d = replica(name, ReplicaScale::tiny(), seed);
        let back = dataset_from_text(&dataset_to_text(&d)).unwrap();
        prop_assert_eq!(back.name(), d.name());
        prop_assert_eq!(
            back.graph.edges().collect::<Vec<_>>(),
            d.graph.edges().collect::<Vec<_>>()
        );
        prop_assert_eq!(back.labels(), d.labels());
        prop_assert_eq!(&back.split, &d.split);
        prop_assert_eq!(&back.features, &d.features);
    }

    #[test]
    fn mutated_dataset_bytes_never_panic_the_parser(
        seed in 0u64..400,
        n_mutations in 1usize..64,
    ) {
        use amud_repro::datasets::io::{dataset_from_text, dataset_to_text};
        use amud_repro::datasets::{replica, ReplicaScale};
        use amud_repro::train::corrupt_bytes;
        let text = dataset_to_text(&replica("texas", ReplicaScale::tiny(), 0));
        // Ok (mutation hit a value without breaking syntax) and Err are
        // both fine — the property is the absence of a panic, plus error
        // line numbers that actually exist in the input.
        if let Err(amud_repro::datasets::DatasetError::Parse { line, .. }) =
            dataset_from_text(&corrupt_bytes(&text, seed, n_mutations))
        {
            prop_assert!(line >= 1 && line <= text.lines().count());
        }
    }

    #[test]
    fn truncated_dataset_bytes_never_panic_the_parser(cut_permille in 0usize..1000) {
        use amud_repro::datasets::io::{dataset_from_text, dataset_to_text};
        use amud_repro::datasets::{replica, ReplicaScale};
        let text = dataset_to_text(&replica("cornell", ReplicaScale::tiny(), 1));
        let keep = text.len() * cut_permille / 1000;
        // A strict prefix can never be a complete dataset.
        prop_assert!(dataset_from_text(&text[..keep]).is_err());
    }
}
