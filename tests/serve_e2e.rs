//! End-to-end subprocess tests for the serving stack (DESIGN.md §13):
//! the `amud snapshot` / `amud serve` CLI, the exit-code table extension
//! (9 snapshot, 10 deadline, 11 overload, 12 bad request), and the three
//! degradation paths the service guarantees:
//!
//! 1. a corrupt or truncated snapshot is rejected with a typed error
//!    (exit 9) — and a corrupt *hot-swap candidate* leaves the last-good
//!    engine serving;
//! 2. a past-deadline request gets a `TIMEOUT` reply without stalling
//!    the rest of its batch;
//! 3. queue overflow sheds with `retry_after_ms` while admitted requests
//!    complete.
//!
//! Every test runs the real binary (`CARGO_BIN_EXE_amud`) against a real
//! TCP socket; timing-sensitive paths are made deterministic with the
//! `--batch-delay-ms` admission hook (a queued request keeps its slot
//! while the batcher sleeps, so capacity-1 shedding is exact).

use amud_repro::serve::{synthetic_snapshot, write_snapshot};
use amud_repro::train::{corrupt_binary, truncate_binary};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("amud-serve-e2e-{}-{name}", std::process::id()))
}

/// Writes a valid synthetic snapshot and returns its path.
fn make_snapshot(name: &str, seed: u64) -> PathBuf {
    let path = scratch(&format!("{name}.snap"));
    write_snapshot(&path, &synthetic_snapshot(seed, 20, 4, 2, 2, 8, 0)).expect("write snapshot");
    path
}

/// An `amud serve` subprocess plus the port it reported on stdout.
struct ServerProc {
    child: Child,
    port: u16,
}

impl ServerProc {
    fn start(snapshot: &PathBuf, extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_amud"))
            .arg("serve")
            .arg("--snapshot")
            .arg(snapshot)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn amud serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read listening line");
        let port = line
            .trim()
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| panic!("no port in {line:?}"));
        ServerProc { child, port }
    }

    fn connect(&self) -> Client {
        Client::connect(self.port)
    }

    fn shutdown(mut self) {
        let _ = self.connect().roundtrip("SHUTDOWN");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() {
                        let mut err = String::new();
                        if let Some(mut stderr) = self.child.stderr.take() {
                            use std::io::Read;
                            let _ = stderr.read_to_string(&mut err);
                        }
                        panic!("server exited non-zero: {status}\nstderr: {err}");
                    }
                    return;
                }
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                _ => {
                    let _ = self.child.kill();
                    panic!("server did not exit after SHUTDOWN");
                }
            }
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
        Client { reader: BufReader::new(stream.try_clone().expect("clone")), writer: stream }
    }

    fn send(&mut self, cmd: &str) {
        writeln!(self.writer, "{cmd}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        line.trim().to_string()
    }

    fn roundtrip(&mut self, cmd: &str) -> String {
        self.send(cmd);
        self.recv()
    }
}

/// Polls `STATS` until `pred` matches (10s budget) and returns the line.
fn poll_stats(client: &mut Client, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.roundtrip("STATS");
        if pred(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "waiting for {what}; last STATS: {stats}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

// --- snapshot rejection (exit code 9) ------------------------------------

#[test]
fn corrupt_snapshot_is_rejected_with_exit_9() {
    let path = make_snapshot("corrupt-reject", 1);
    let bytes = std::fs::read(&path).expect("read snapshot");
    for seed in [1, 2, 3] {
        std::fs::write(&path, corrupt_binary(&bytes, seed, 4)).expect("write corrupt");
        let out = Command::new(env!("CARGO_BIN_EXE_amud"))
            .args(["serve", "--snapshot"])
            .arg(&path)
            .output()
            .expect("run amud serve");
        assert_eq!(
            out.status.code(),
            Some(9),
            "seed {seed}: stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("snapshot"),
            "error must name the snapshot"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_snapshot_is_rejected_with_exit_9() {
    let path = make_snapshot("truncate-reject", 2);
    let bytes = std::fs::read(&path).expect("read snapshot");
    for fraction in [0.0, 0.3, 0.7, 0.99] {
        std::fs::write(&path, truncate_binary(&bytes, fraction)).expect("write truncated");
        let out = Command::new(env!("CARGO_BIN_EXE_amud"))
            .args(["serve", "--snapshot"])
            .arg(&path)
            .output()
            .expect("run amud serve");
        assert_eq!(
            out.status.code(),
            Some(9),
            "fraction {fraction}: stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_file(&path).ok();
}

// --- the three degradation paths -----------------------------------------

#[test]
fn past_deadline_request_times_out_without_stalling_the_batch() {
    let path = make_snapshot("deadline", 3);
    let server = ServerProc::start(&path, &["--batch-delay-ms", "300"]);
    let mut c = server.connect();
    // Expired at pop time → TIMEOUT reply, no inference, no stall.
    let reply = c.roundtrip("PREDICT 0 DEADLINE 1");
    assert!(reply.starts_with("TIMEOUT waited_ms="), "{reply}");
    // The next request (default deadline) is served normally.
    let reply = c.roundtrip("PREDICT 0 1 2");
    assert!(reply.starts_with("OK "), "{reply}");
    let stats = c.roundtrip("STATS");
    assert!(stats.contains("\"timeouts\":1"), "{stats}");
    assert!(stats.contains("\"served\":1"), "{stats}");
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn queue_overflow_sheds_while_the_admitted_request_completes() {
    let path = make_snapshot("overload", 4);
    let server = ServerProc::start(&path, &["--queue-capacity", "1", "--batch-delay-ms", "700"]);
    let mut first = server.connect();
    let mut second = server.connect();
    // First request takes the only queue slot; the batcher holds it there
    // for 700ms (wait_nonempty does not pop), so the second request is
    // deterministically shed.
    first.send("PREDICT 0");
    std::thread::sleep(Duration::from_millis(200));
    let shed = second.roundtrip("PREDICT 1");
    assert!(shed.starts_with("SHED retry_after_ms="), "{shed}");
    // The admitted request still completes.
    let reply = first.recv();
    assert!(reply.starts_with("OK "), "{reply}");
    let stats = second.roundtrip("STATS");
    assert!(stats.contains("\"shed\":1"), "{stats}");
    assert!(stats.contains("\"served\":1"), "{stats}");
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_hot_swap_candidate_degrades_while_last_good_serves() {
    let path = make_snapshot("hotswap", 5);
    let server = ServerProc::start(&path, &["--watch-interval-ms", "10"]);
    let mut c = server.connect();
    assert!(c.roundtrip("PREDICT 0").starts_with("OK "));

    // Corrupt candidate: watcher must reject it and keep last-good.
    std::fs::write(&path, b"definitely not a snapshot").expect("write garbage");
    poll_stats(&mut c, "degraded counter", |s| s.contains("\"degraded\":1"));
    assert!(c.roundtrip("PREDICT 1").starts_with("OK "), "last-good must keep serving");
    let health = c.roundtrip("HEALTH");
    assert!(health.contains("degraded_total=1"), "{health}");
    assert!(health.contains("tag=5"), "engine must still be the original: {health}");

    // A valid successor (tag 99) swaps in between batches.
    write_snapshot(&path, &synthetic_snapshot(99, 20, 4, 2, 2, 8, 0)).expect("write v2");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.roundtrip("STATS");
        if stats.contains("\"tag\":99") {
            assert!(stats.contains("\"swaps\":1"), "{stats}");
            break;
        }
        assert!(Instant::now() < deadline, "candidate never swapped in: {stats}");
        assert!(c.roundtrip("PREDICT 2").starts_with("OK "));
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

// --- protocol errors ------------------------------------------------------

#[test]
fn bad_requests_are_rejected_in_band_with_exit_code_12() {
    let path = make_snapshot("badreq", 6);
    let server = ServerProc::start(&path, &[]);
    let mut c = server.connect();
    // Out-of-range node, malformed id, empty request, unknown command:
    // all answered in-band with the BadRequest code, connection stays up.
    assert!(c.roundtrip("PREDICT 9999").starts_with("ERR 12 "));
    assert!(c.roundtrip("PREDICT zero").starts_with("ERR 12 "));
    assert!(c.roundtrip("PREDICT").starts_with("ERR 12 "));
    assert!(c.roundtrip("FROBNICATE").starts_with("ERR 12 "));
    assert!(c.roundtrip("PREDICT 3").starts_with("OK "), "connection must survive bad requests");
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

// --- trained-model path ----------------------------------------------------

#[test]
fn snapshot_cli_trains_and_the_artifact_serves_predictions() {
    let path = scratch("trained.snap");
    let out = Command::new(env!("CARGO_BIN_EXE_amud"))
        .args(["snapshot", "texas", "--out"])
        .arg(&path)
        .args(["--tag", "7"])
        .env("AMUD_SCALE", "tiny")
        .env("AMUD_EPOCHS", "5")
        .output()
        .expect("run amud snapshot");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}\nstdout: {}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    let server = ServerProc::start(&path, &[]);
    let mut c = server.connect();
    let reply = c.roundtrip("PREDICT 0 1 2 3");
    assert!(reply.starts_with("OK "), "{reply}");
    assert_eq!(reply.split_whitespace().count(), 5, "4 predictions expected: {reply}");
    let health = c.roundtrip("HEALTH");
    assert!(health.contains("tag=7"), "{health}");
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Quantized-artifact e2e (run by `ci.sh` via the `ci_smoke` filter):
/// requantize the synthetic snapshot to the mixed int8-features /
/// f16-weights spec, serve it from disk through a real subprocess, and pin
/// every wire reply to the in-process `Engine` on the same artifact.
#[test]
fn ci_smoke_quantized_snapshot_serves() {
    use amud_repro::quant::QuantSpec;
    use amud_repro::serve::{read_snapshot, Engine};

    let spec = QuantSpec::parse("int8:f16").expect("spec");
    let snap = synthetic_snapshot(13, 20, 4, 2, 2, 8, 0).requantized(spec);
    let path = scratch("ci-smoke-quant.snap");
    write_snapshot(&path, &snap).expect("write quantized snapshot");

    // The artifact on disk is genuinely quantized, not silently widened.
    let back = read_snapshot(&path).expect("re-read quantized snapshot");
    assert_eq!(back.export.spec(), spec, "on-disk spec must survive the round trip");
    let engine = Engine::new(back).expect("engine from quantized snapshot");

    let server = ServerProc::start(&path, &[]);
    let mut c = server.connect();
    for node in [0usize, 5, 19] {
        let reply = c.roundtrip(&format!("PREDICT {node}"));
        assert!(reply.starts_with("OK "), "{reply}");
        // Reply format: `OK <node>:<class>:<conf>` — pin the whole triple
        // against the in-process engine on the same quantized artifact.
        let p = &engine.predict(&[node]).expect("in-process predict")[0];
        let want = format!("OK {}:{}:{:.6}", p.node, p.class, p.confidence);
        assert_eq!(reply, want, "node {node}: wire reply diverged from in-process engine");
    }
    let health = c.roundtrip("HEALTH");
    assert!(health.contains("tag=13"), "{health}");
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

// --- CI smoke -------------------------------------------------------------

/// The one test `ci.sh` runs by name: spawn a server, issue a normal
/// request, a past-deadline request, and a request during a hot swap,
/// then assert every counter moved. Small, deterministic, end-to-end.
#[test]
fn ci_smoke() {
    let path = make_snapshot("ci-smoke", 8);
    let server =
        ServerProc::start(&path, &["--watch-interval-ms", "10", "--default-deadline-ms", "5000"]);
    let mut c = server.connect();

    // Normal requests.
    for node in [0, 5, 19] {
        let reply = c.roundtrip(&format!("PREDICT {node}"));
        assert!(reply.starts_with("OK "), "{reply}");
    }
    // Past-deadline request.
    assert!(c.roundtrip("PREDICT 1 DEADLINE 0").starts_with("TIMEOUT"));

    // Hot swap: corrupt candidate first (degraded), then a valid one.
    std::fs::write(&path, b"garbage").expect("write garbage");
    poll_stats(&mut c, "degraded", |s| s.contains("\"degraded\":1"));
    assert!(c.roundtrip("PREDICT 2").starts_with("OK "), "request during degradation");
    write_snapshot(&path, &synthetic_snapshot(42, 20, 4, 2, 2, 8, 0)).expect("write v2");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.roundtrip("STATS");
        if stats.contains("\"tag\":42") {
            break;
        }
        assert!(Instant::now() < deadline, "swap never landed: {stats}");
        assert!(c.roundtrip("PREDICT 3").starts_with("OK "), "request during hot swap");
        std::thread::sleep(Duration::from_millis(20));
    }

    let stats = c.roundtrip("STATS");
    for needle in ["\"timeouts\":1", "\"degraded\":1", "\"swaps\":1"] {
        assert!(stats.contains(needle), "missing {needle}: {stats}");
    }
    assert!(!stats.contains("\"served\":0,"), "served counter must move: {stats}");
    server.shutdown();
    std::fs::remove_file(&path).ok();
}
