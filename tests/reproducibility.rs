//! Determinism guarantees: everything in the reproduction is a pure
//! function of its seed.

use amud_repro::core::{amud::amud_score, Adpa, AdpaConfig};
use amud_repro::datasets::{replica, ReplicaScale};
use amud_repro::models::registry::{build_model, model_names};
use amud_repro::train::{train, GraphData, Model, TrainConfig};

fn bundle(name: &str, seed: u64) -> GraphData {
    let d = replica(name, ReplicaScale::tiny(), seed);
    GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    )
    .unwrap()
}

#[test]
fn dataset_generation_is_deterministic() {
    let a = replica("chameleon", ReplicaScale::tiny(), 9);
    let b = replica("chameleon", ReplicaScale::tiny(), 9);
    assert_eq!(a.graph.edges().collect::<Vec<_>>(), b.graph.edges().collect::<Vec<_>>());
    assert_eq!(a.features, b.features);
    assert_eq!(a.split, b.split);
}

#[test]
fn different_seeds_give_different_graphs() {
    let a = replica("chameleon", ReplicaScale::tiny(), 9);
    let b = replica("chameleon", ReplicaScale::tiny(), 10);
    assert_ne!(a.graph.edges().collect::<Vec<_>>(), b.graph.edges().collect::<Vec<_>>());
}

#[test]
fn amud_is_deterministic() {
    let d = replica("texas", ReplicaScale::tiny(), 0);
    let r1 = amud_score(d.graph.adjacency(), d.labels(), d.n_classes());
    let r2 = amud_score(d.graph.adjacency(), d.labels(), d.n_classes());
    assert_eq!(r1.score, r2.score);
    assert_eq!(r1.decision, r2.decision);
}

#[test]
fn adpa_training_is_bit_reproducible() {
    let data = bundle("texas", 1);
    let cfg =
        TrainConfig { epochs: 40, patience: 0, lr: 0.01, weight_decay: 5e-4, ..Default::default() };
    let run = || {
        let mut m = Adpa::new(&data, AdpaConfig::default(), 7).unwrap();
        train(&mut m, &data, cfg, 7).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.test_acc, b.test_acc);
    assert_eq!(a.best_val_acc, b.best_val_acc);
    assert_eq!(a.epochs_run, b.epochs_run);
}

#[test]
fn every_baseline_is_seed_reproducible() {
    let data = bundle("texas", 2);
    let cfg =
        TrainConfig { epochs: 15, patience: 0, lr: 0.01, weight_decay: 5e-4, ..Default::default() };
    struct Shim(Box<dyn Model>);
    impl Model for Shim {
        fn bank(&self) -> &amud_repro::nn::ParamBank {
            self.0.bank()
        }
        fn bank_mut(&mut self) -> &mut amud_repro::nn::ParamBank {
            self.0.bank_mut()
        }
        fn forward(
            &self,
            tape: &mut amud_repro::nn::Tape,
            data: &GraphData,
            training: bool,
            rng: &mut rand::rngs::StdRng,
        ) -> amud_repro::nn::NodeId {
            self.0.forward(tape, data, training, rng)
        }
        fn name(&self) -> &'static str {
            self.0.name()
        }
    }
    for name in model_names() {
        let run = || {
            let mut m = Shim(build_model(name, &data, 3));
            train(&mut m, &data, cfg, 3).unwrap().test_acc
        };
        assert_eq!(run(), run(), "{name} is not reproducible");
    }
}
