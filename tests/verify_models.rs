//! Every model the repo ships must record a statically clean tape: shapes
//! consistent, every parameter reachable from the loss, no dangling nodes.
//! This is the acceptance gate for the `amud_nn::verify` pass — a model
//! whose parameters silently receive zero gradient would train as a
//! strictly smaller model without any test noticing.

use amud_repro::core::{paradigm, Adpa, AdpaConfig};
use amud_repro::datasets::{replica, ReplicaScale};
use amud_repro::models::registry::{
    build_model, extra_model_names, is_directed_model, model_names,
};
use amud_repro::nn::verify::Severity;
use amud_repro::train::{verify_model, GraphData};

fn bundle(name: &str, seed: u64) -> GraphData {
    let d = replica(name, ReplicaScale::tiny(), seed);
    GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    )
    .unwrap()
}

fn assert_clean(name: &str, dataset: &str, diags: &[amud_repro::nn::Diagnostic]) {
    let findings: Vec<String> =
        diags.iter().filter(|d| d.severity >= Severity::Warning).map(|d| d.to_string()).collect();
    assert!(
        findings.is_empty(),
        "{name} on {dataset} records a dirty tape:\n{}",
        findings.join("\n")
    );
}

#[test]
fn every_registry_model_verifies_clean() {
    // One homophilous and one directed-heterophilous fixture so both code
    // paths of direction-aware models are exercised.
    for dataset in ["cora_ml", "chameleon"] {
        let raw = bundle(dataset, 40);
        for name in model_names().iter().chain(extra_model_names().iter()) {
            let input = if is_directed_model(name) { raw.clone() } else { raw.to_undirected() };
            let model = build_model(name, &input, 0);
            assert_clean(name, dataset, &verify_model(&*model, &input, 0));
        }
    }
}

#[test]
fn adpa_verifies_clean_on_both_paradigms() {
    for dataset in ["cora_ml", "chameleon"] {
        let raw = bundle(dataset, 41);
        let (prepared, _, _) = paradigm::prepare_topology(&raw);
        let model = Adpa::new(&prepared, AdpaConfig::default(), 0).unwrap();
        assert_clean("ADPA", dataset, &verify_model(&model, &prepared, 0));
    }
}

#[test]
fn adpa_ablations_verify_clean() {
    use amud_repro::core::DpAttention;
    let raw = bundle("chameleon", 42);
    for variant in [
        DpAttention::Original,
        DpAttention::Gate,
        DpAttention::Recursive,
        DpAttention::Jk,
        DpAttention::None,
    ] {
        let cfg = AdpaConfig { dp_attention: variant, ..Default::default() };
        let model = Adpa::new(&raw, cfg, 0).unwrap();
        assert_clean(&format!("ADPA/{variant:?}"), "chameleon", &verify_model(&model, &raw, 0));
    }
    let no_hop = AdpaConfig { hop_attention: false, ..Default::default() };
    let model = Adpa::new(&raw, no_hop, 0).unwrap();
    assert_clean("ADPA/no-hop", "chameleon", &verify_model(&model, &raw, 0));
}
