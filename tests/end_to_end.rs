//! End-to-end integration: the full Fig. 1 workflow across crates —
//! dataset generation → AMUD guidance → paradigm dispatch → training.

use amud_repro::core::{paradigm, paradigm::Paradigm, Adpa, AdpaConfig};
use amud_repro::datasets::{replica, ReplicaScale};
use amud_repro::train::{train, GraphData, TrainConfig};

fn bundle(name: &str, seed: u64) -> GraphData {
    let d = replica(name, ReplicaScale::tiny(), seed);
    GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    )
    .unwrap()
}

fn quick() -> TrainConfig {
    TrainConfig { epochs: 60, patience: 0, lr: 0.01, weight_decay: 5e-4, ..Default::default() }
}

#[test]
fn paradigm_one_pipeline_citation_network() {
    let data = bundle("cora_ml", 0);
    let (prepared, report, par) = paradigm::prepare_topology(&data);
    assert_eq!(
        par,
        Paradigm::I,
        "homophilous citation replica must go Paradigm I (S = {})",
        report.score
    );
    assert!(prepared.is_undirected());
    let mut model = Adpa::new(&prepared, AdpaConfig::default(), 0).unwrap();
    let result = train(&mut model, &prepared, quick(), 0).unwrap();
    assert!(result.test_acc > 0.4, "ADPA on AMUndirected cora: {}", result.test_acc);
}

#[test]
fn paradigm_two_pipeline_oriented_heterophily() {
    let data = bundle("chameleon", 1);
    let (prepared, report, par) = paradigm::prepare_topology(&data);
    assert_eq!(
        par,
        Paradigm::II,
        "oriented heterophilous replica must go Paradigm II (S = {})",
        report.score
    );
    assert!(!prepared.is_undirected());
    let mut model = Adpa::new(&prepared, AdpaConfig::default(), 1).unwrap();
    let result = train(&mut model, &prepared, quick(), 1).unwrap();
    assert!(result.test_acc > 0.3, "ADPA on AMDirected chameleon: {}", result.test_acc);
}

#[test]
fn abnormal_case_routes_to_paradigm_one() {
    // Actor: heterophilous by the classic metrics, yet AMUD routes it to
    // undirected modeling — the Table V phenomenon, end to end.
    let data = bundle("actor", 2);
    let (_, report, par) = paradigm::prepare_topology(&data);
    assert_eq!(par, Paradigm::I, "actor must be AMUndirected (S = {})", report.score);
}

#[test]
fn amud_never_sees_test_labels() {
    // Corrupting every *test* label must not change the AMUD decision
    // pipeline's output (it only reads train+val labels and features).
    let data = bundle("texas", 3);
    let (r1, p1) = paradigm::decide(&data);
    let mut corrupted = data.clone();
    {
        let labels = std::rc::Rc::make_mut(&mut corrupted.labels);
        for &v in corrupted.test.iter() {
            labels[v] = (labels[v] + 1) % data.n_classes;
        }
    }
    let (r2, p2) = paradigm::decide(&corrupted);
    assert_eq!(p1, p2);
    assert!((r1.score - r2.score).abs() < 1e-12, "{} vs {}", r1.score, r2.score);
}

#[test]
fn all_fourteen_replicas_flow_through_the_pipeline() {
    use amud_repro::datasets::registry::{all_specs, AmudRegime};
    for spec in all_specs() {
        let name = spec.name;
        let regime = spec.regime;
        // Default scale: AMUD is a statistical test, and the tiniest
        // replicas (300 nodes) sit below its small-sample resolution just
        // as a 300-node CiteSeer subsample would.
        let d = replica(name, ReplicaScale::default(), 4);
        let data = GraphData::new(
            &d.graph,
            d.features.clone(),
            d.split.train.clone(),
            d.split.val.clone(),
            d.split.test.clone(),
        )
        .unwrap();
        let (report, par) = paradigm::decide(&data);
        let expected = match regime {
            AmudRegime::Directed => Paradigm::II,
            AmudRegime::Undirected => Paradigm::I,
        };
        assert_eq!(
            par, expected,
            "{name}: S = {:.3}, expected {regime:?} (tiny-scale replica)",
            report.score
        );
    }
}
